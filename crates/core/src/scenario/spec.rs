//! [`ScenarioSpec`] — the serializable description of one experiment.
//!
//! A spec is *data*: benchmark, pipe stage, solver registry keys, a θ
//! grid (or a rule for deriving one), which barrier intervals to include,
//! worker count and harness quality. [`crate::scenario::Experiment`]
//! turns a spec into a [`crate::scenario::Report`]; committed spec files
//! under `crates/bench/specs/` are the declarative form of the paper's
//! figures.

use circuits::StageKind;
use workloads::Benchmark;

use crate::error::OptError;
use crate::experiments::HarnessConfig;
use crate::scenario::json::Json;

/// How much work the characterization harness does for this scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Test-sized workloads (`HarnessConfig::quick`).
    Quick,
    /// Paper-shaped workloads (`HarnessConfig::paper_default`).
    Paper,
}

impl Quality {
    /// The harness configuration this quality level maps to.
    #[must_use]
    pub fn harness(self) -> HarnessConfig {
        match self {
            Quality::Quick => HarnessConfig::quick(),
            Quality::Paper => HarnessConfig::paper_default(),
        }
    }

    /// Canonical spec-file name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Quality::Quick => "quick",
            Quality::Paper => "paper",
        }
    }

    /// Parses a quality level (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Quality> {
        match name.trim().to_ascii_lowercase().as_str() {
            "quick" => Some(Quality::Quick),
            "paper" => Some(Quality::Paper),
            _ => None,
        }
    }
}

/// The θ grid of a scenario — either explicit values or a rule resolved
/// against the scenario's equal-weight θ (Σ nominal energy / Σ nominal
/// time over the selected intervals).
#[derive(Debug, Clone, PartialEq)]
pub enum ThetaSpec {
    /// The single equal-weight θ (the paper's Fig 6.18 setting).
    EqualWeight,
    /// Explicit absolute θ values.
    Grid(Vec<f64>),
    /// `points` log-spaced values spanning `10^-decades ..= 10^decades`
    /// around the equal-weight θ — the grid behind Figs 6.11–6.16.
    LogAroundEqualWeight {
        /// Number of grid points.
        points: usize,
        /// Half-width of the sweep in decades.
        decades: f64,
    },
}

impl ThetaSpec {
    /// Resolves the spec into concrete θ values given the scenario's
    /// equal-weight center.
    #[must_use]
    pub fn resolve(&self, center: f64) -> Vec<f64> {
        match self {
            ThetaSpec::EqualWeight => vec![center],
            ThetaSpec::Grid(values) => values.clone(),
            ThetaSpec::LogAroundEqualWeight { points, decades } => {
                crate::pareto::log_theta_grid(center, *points, *decades)
            }
        }
    }
}

/// Which barrier intervals of the characterized benchmark the scenario
/// aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalSelection {
    /// Every interval (summed energy/time, as in the paper's figures).
    All,
    /// One interval by index.
    Index(usize),
    /// The interval with the widest per-thread error spread — the
    /// "illustrative barrier interval" of Figs 3.5/3.6.
    MostHeterogeneous,
}

/// A complete, serializable experiment description.
///
/// Build one in code with the fluent setters, or load a committed JSON
/// file with [`ScenarioSpec::from_json_str`]:
///
/// ```
/// use synts_core::scenario::{ScenarioSpec, ThetaSpec};
/// use workloads::Benchmark;
/// use circuits::StageKind;
///
/// let spec = ScenarioSpec::new("demo", Benchmark::Radix, StageKind::Decode)
///     .schemes(["synts_poly", "no_ts"])
///     .thetas(ThetaSpec::EqualWeight)
///     .normalize_to("nominal");
/// let round_trip = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
/// assert_eq!(round_trip, spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario identifier (fixture/figure id, CSV stem).
    pub name: String,
    /// The workload kernel to characterize.
    pub benchmark: Benchmark,
    /// The pipe stage to characterize it on.
    pub stage: StageKind,
    /// Solver registry keys to run, in reporting order.
    pub schemes: Vec<String>,
    /// The θ grid.
    pub thetas: ThetaSpec,
    /// Which barrier intervals to aggregate.
    pub intervals: IntervalSelection,
    /// Sweep worker count (`None`: `SYNTS_THREADS`, then the machine).
    pub workers: Option<usize>,
    /// Characterization effort.
    pub quality: Quality,
    /// Registry key of the scheme to normalize energy/time against
    /// (evaluated at the equal-weight θ), e.g. `"nominal"`.
    pub normalize_to: Option<String>,
    /// Whether records carry the per-interval assignments.
    pub record_assignments: bool,
    /// Whether the report includes the model-vs-simulation agreement
    /// check (analytic Eq 4.1–4.3 vs the cycle-level Razor simulator).
    pub verify_model: bool,
    /// Fault-injection plan armed for runs of this spec (the
    /// [`crate::faults::FaultPlan`] grammar), `None` for production runs.
    /// Omitted from the JSON form when unset so existing spec files and
    /// golden fixtures are byte-unchanged.
    pub faults: Option<String>,
}

impl ScenarioSpec {
    /// A spec with the common defaults: `synts_poly` at the equal-weight
    /// θ over all intervals, quick quality, no normalization.
    #[must_use]
    pub fn new(name: impl Into<String>, benchmark: Benchmark, stage: StageKind) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            benchmark,
            stage,
            schemes: vec!["synts_poly".to_string()],
            thetas: ThetaSpec::EqualWeight,
            intervals: IntervalSelection::All,
            workers: None,
            quality: Quality::Quick,
            normalize_to: None,
            record_assignments: false,
            verify_model: false,
            faults: None,
        }
    }

    /// Replaces the scheme list.
    #[must_use]
    pub fn schemes<S: Into<String>>(mut self, schemes: impl IntoIterator<Item = S>) -> Self {
        self.schemes = schemes.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the θ grid.
    #[must_use]
    pub fn thetas(mut self, thetas: ThetaSpec) -> Self {
        self.thetas = thetas;
        self
    }

    /// Sets the interval selection.
    #[must_use]
    pub fn intervals(mut self, intervals: IntervalSelection) -> Self {
        self.intervals = intervals;
        self
    }

    /// Sets an explicit worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the harness quality.
    #[must_use]
    pub fn quality(mut self, quality: Quality) -> Self {
        self.quality = quality;
        self
    }

    /// Normalizes records against a scheme (by registry key).
    #[must_use]
    pub fn normalize_to(mut self, scheme: impl Into<String>) -> Self {
        self.normalize_to = Some(scheme.into());
        self
    }

    /// Records the chosen per-interval assignments in the report.
    #[must_use]
    pub fn record_assignments(mut self, record: bool) -> Self {
        self.record_assignments = record;
        self
    }

    /// Includes the model-vs-simulation agreement check in the report.
    #[must_use]
    pub fn verify_model(mut self, verify: bool) -> Self {
        self.verify_model = verify;
        self
    }

    /// Arms a fault-injection plan (the [`crate::faults::FaultPlan`]
    /// grammar) for runs of this spec.
    #[must_use]
    pub fn faults(mut self, plan: impl Into<String>) -> Self {
        self.faults = Some(plan.into());
        self
    }

    /// The JSON tree of this spec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let thetas = match &self.thetas {
            ThetaSpec::EqualWeight => Json::str("equal_weight"),
            ThetaSpec::Grid(values) => Json::obj().field(
                "grid",
                Json::Arr(values.iter().map(|&x| Json::num(x)).collect()),
            ),
            ThetaSpec::LogAroundEqualWeight { points, decades } => Json::obj().field(
                "log_around_equal_weight",
                Json::obj()
                    .field("points", Json::num(*points as f64))
                    .field("decades", Json::num(*decades)),
            ),
        };
        let intervals = match self.intervals {
            IntervalSelection::All => Json::str("all"),
            IntervalSelection::MostHeterogeneous => Json::str("most_heterogeneous"),
            IntervalSelection::Index(i) => Json::obj().field("index", Json::num(i as f64)),
        };
        let mut spec = Json::obj()
            .field("name", Json::str(&self.name))
            .field("benchmark", Json::str(self.benchmark.name()))
            .field("stage", Json::str(self.stage.name()))
            .field(
                "schemes",
                Json::Arr(self.schemes.iter().map(Json::str).collect()),
            )
            .field("thetas", thetas)
            .field("intervals", intervals)
            .field(
                "workers",
                match self.workers {
                    Some(n) => Json::num(n as f64),
                    None => Json::Null,
                },
            )
            .field("quality", Json::str(self.quality.name()))
            .field(
                "normalize_to",
                match &self.normalize_to {
                    Some(s) => Json::str(s),
                    None => Json::Null,
                },
            )
            .field("record_assignments", Json::Bool(self.record_assignments))
            .field("verify_model", Json::Bool(self.verify_model));
        // Emitted only when armed: unset plans leave the rendering (and
        // every committed fixture) byte-identical to the pre-faults form.
        if let Some(plan) = &self.faults {
            spec = spec.field("faults", Json::str(plan));
        }
        spec
    }

    /// Pretty JSON — the committed spec-file format.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses a spec from a JSON tree.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] naming the offending field by its full path,
    /// including the array index for list entries (e.g.
    /// `thetas.grid[3]: expected a finite number >= 0`) — actionable
    /// from a remote client that only sees the message string.
    pub fn from_json(json: &Json) -> Result<ScenarioSpec, OptError> {
        let bad = |path: &str, expected: &str| {
            OptError::Spec(format!("scenario spec: {path}: {expected}"))
        };
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("name", "expected a string"))?
            .to_string();
        let bench_name = json
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("benchmark", "expected a string"))?;
        let benchmark = Benchmark::from_name(bench_name).ok_or_else(|| {
            let known: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            bad(
                "benchmark",
                &format!(
                    "unknown benchmark '{bench_name}' (known: {})",
                    known.join(", ")
                ),
            )
        })?;
        let stage_name = json
            .get("stage")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("stage", "expected a string"))?;
        let stage = StageKind::from_name(stage_name).ok_or_else(|| {
            let known: Vec<&str> = StageKind::ALL.iter().map(|s| s.name()).collect();
            bad(
                "stage",
                &format!("unknown stage '{stage_name}' (known: {})", known.join(", ")),
            )
        })?;
        let schemes = match json.get("schemes") {
            Some(Json::Arr(items)) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        bad(&format!("schemes[{i}]"), "expected a registry-key string")
                    })
                })
                .collect::<Result<Vec<String>, OptError>>()?,
            None => vec!["synts_poly".to_string()],
            Some(_) => return Err(bad("schemes", "expected an array of registry keys")),
        };
        if schemes.is_empty() {
            return Err(bad("schemes", "must name at least one registry key"));
        }
        let thetas = match json.get("thetas") {
            None => ThetaSpec::EqualWeight,
            Some(Json::Str(s)) if s == "equal_weight" => ThetaSpec::EqualWeight,
            Some(value) => {
                if let Some(grid) = value.get("grid").and_then(Json::as_arr) {
                    let values = grid
                        .iter()
                        .enumerate()
                        .map(|(i, x)| {
                            x.as_f64()
                                .filter(|v| v.is_finite() && *v >= 0.0)
                                .ok_or_else(|| {
                                    bad(
                                        &format!("thetas.grid[{i}]"),
                                        "expected a finite number >= 0",
                                    )
                                })
                        })
                        .collect::<Result<Vec<f64>, OptError>>()?;
                    if values.is_empty() {
                        return Err(bad("thetas.grid", "must not be empty"));
                    }
                    ThetaSpec::Grid(values)
                } else if let Some(log) = value.get("log_around_equal_weight") {
                    let points = log
                        .get("points")
                        .and_then(Json::as_usize)
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            bad(
                                "thetas.log_around_equal_weight.points",
                                "expected an integer >= 1",
                            )
                        })?;
                    let decades = log
                        .get("decades")
                        .and_then(Json::as_f64)
                        .filter(|d| d.is_finite() && *d >= 0.0)
                        .ok_or_else(|| {
                            bad(
                                "thetas.log_around_equal_weight.decades",
                                "expected a finite number >= 0",
                            )
                        })?;
                    ThetaSpec::LogAroundEqualWeight { points, decades }
                } else {
                    return Err(bad(
                        "thetas",
                        "expected \"equal_weight\", {\"grid\": [...]} or \
                         {\"log_around_equal_weight\": {\"points\": n, \"decades\": d}}",
                    ));
                }
            }
        };
        let intervals = match json.get("intervals") {
            None => IntervalSelection::All,
            Some(Json::Str(s)) if s == "all" => IntervalSelection::All,
            Some(Json::Str(s)) if s == "most_heterogeneous" => IntervalSelection::MostHeterogeneous,
            Some(value) => match value.get("index").and_then(Json::as_usize) {
                Some(i) => IntervalSelection::Index(i),
                None => {
                    return Err(bad(
                        "intervals",
                        "expected \"all\", \"most_heterogeneous\" or {\"index\": n}",
                    ))
                }
            },
        };
        let workers = match json.get("workers") {
            None | Some(Json::Null) => None,
            Some(value) => Some(
                value
                    .as_usize()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| bad("workers", "expected an integer >= 1 or null"))?,
            ),
        };
        let quality = match json.get("quality") {
            None => Quality::Quick,
            Some(value) => {
                let s = value
                    .as_str()
                    .ok_or_else(|| bad("quality", "expected a string"))?;
                Quality::from_name(s)
                    .ok_or_else(|| bad("quality", "expected \"quick\" or \"paper\""))?
            }
        };
        let normalize_to = match json.get("normalize_to") {
            None | Some(Json::Null) => None,
            Some(value) => Some(
                value
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("normalize_to", "expected a registry key or null"))?,
            ),
        };
        let flag = |key: &str| -> Result<bool, OptError> {
            match json.get(key) {
                None => Ok(false),
                Some(value) => value.as_bool().ok_or_else(|| bad(key, "expected a bool")),
            }
        };
        Ok(ScenarioSpec {
            name,
            benchmark,
            stage,
            schemes,
            thetas,
            intervals,
            workers,
            quality,
            normalize_to,
            record_assignments: flag("record_assignments")?,
            verify_model: flag("verify_model")?,
            faults: match json.get("faults") {
                None | Some(Json::Null) => None,
                Some(value) => Some(
                    value
                        .as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("faults", "expected a fault-plan string or null"))?,
                ),
            },
        })
    }

    /// Parses a spec from JSON text (e.g. a committed spec file).
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] on malformed JSON or an invalid field.
    pub fn from_json_str(src: &str) -> Result<ScenarioSpec, OptError> {
        ScenarioSpec::from_json(&Json::parse(src)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let specs = [
            ScenarioSpec::new("a", Benchmark::Radix, StageKind::Decode),
            ScenarioSpec::new("b", Benchmark::Cholesky, StageKind::SimpleAlu)
                .schemes(["synts_poly", "per_core_ts", "no_ts"])
                .thetas(ThetaSpec::LogAroundEqualWeight {
                    points: 9,
                    decades: 2.0,
                })
                .normalize_to("nominal")
                .quality(Quality::Paper),
            ScenarioSpec::new("c", Benchmark::Fmm, StageKind::ComplexAlu)
                .thetas(ThetaSpec::Grid(vec![0.5, 1.0, 2.0]))
                .intervals(IntervalSelection::Index(2))
                .workers(4)
                .record_assignments(true)
                .verify_model(true),
            ScenarioSpec::new("d", Benchmark::Ocean, StageKind::SimpleAlu)
                .intervals(IntervalSelection::MostHeterogeneous),
        ];
        for spec in specs {
            let text = spec.to_json_string();
            let back = ScenarioSpec::from_json_str(&text).expect("parses");
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn spec_parsing_is_forgiving_and_defaulting() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"name": "min", "benchmark": "RADIX", "stage": "SimpleALU"}"#,
        )
        .expect("parses");
        assert_eq!(spec.benchmark, Benchmark::Radix);
        assert_eq!(spec.stage, StageKind::SimpleAlu);
        assert_eq!(spec.schemes, vec!["synts_poly".to_string()]);
        assert_eq!(spec.thetas, ThetaSpec::EqualWeight);
        assert_eq!(spec.intervals, IntervalSelection::All);
        assert_eq!(spec.quality, Quality::Quick);
        assert!(!spec.record_assignments && !spec.verify_model);
    }

    #[test]
    fn spec_errors_name_the_field() {
        let err = ScenarioSpec::from_json_str(r#"{"benchmark": "radix", "stage": "decode"}"#)
            .expect_err("no name");
        assert!(err.to_string().contains("name: expected a string"), "{err}");
        let err =
            ScenarioSpec::from_json_str(r#"{"name": "x", "benchmark": "nope", "stage": "decode"}"#)
                .expect_err("bad benchmark");
        assert!(err.to_string().contains("radix"), "lists known: {err}");
        let err = ScenarioSpec::from_json_str(
            r#"{"name": "x", "benchmark": "radix", "stage": "decode", "thetas": {"grid": []}}"#,
        )
        .expect_err("empty grid");
        assert!(err.to_string().contains("thetas.grid"), "{err}");
    }

    /// List-entry errors carry the offending index in the field path, so
    /// a remote client can act on the message alone.
    #[test]
    fn spec_errors_carry_the_array_index() {
        let err = ScenarioSpec::from_json_str(
            r#"{"name": "x", "benchmark": "radix", "stage": "decode",
                "thetas": {"grid": [0.5, 1.0, 2.0, "oops"]}}"#,
        )
        .expect_err("non-numeric grid entry");
        let msg = err.to_string();
        assert!(msg.contains("thetas.grid[3]"), "{msg}");
        assert!(msg.contains("expected a finite number"), "{msg}");

        let err = ScenarioSpec::from_json_str(
            r#"{"name": "x", "benchmark": "radix", "stage": "decode",
                "schemes": ["synts_poly", 7]}"#,
        )
        .expect_err("non-string scheme entry");
        assert!(err.to_string().contains("schemes[1]"), "{err}");

        let err = ScenarioSpec::from_json_str(
            r#"{"name": "x", "benchmark": "radix", "stage": "decode",
                "thetas": {"log_around_equal_weight": {"points": 0, "decades": 1}}}"#,
        )
        .expect_err("zero points");
        assert!(
            err.to_string()
                .contains("thetas.log_around_equal_weight.points"),
            "{err}"
        );
    }

    #[test]
    fn quality_and_stage_names_round_trip() {
        for q in [Quality::Quick, Quality::Paper] {
            assert_eq!(Quality::from_name(q.name()), Some(q));
        }
        for s in StageKind::ALL {
            assert_eq!(StageKind::from_name(s.name()), Some(s));
            assert_eq!(StageKind::from_name(&s.to_string()), Some(s));
        }
    }
}
