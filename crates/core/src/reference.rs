//! Naive reference implementations of the three exact solvers — the
//! executable specification of the sweep-scale engine.
//!
//! Before PR 5 these *were* the production paths: Algorithm 1 with a full
//! `Q·S` rescan per minEnergy query, a cold depth-first branch-and-bound
//! per θ, and an odometer over the raw `(Q·S)^M` grid. They are kept
//! verbatim for two jobs:
//!
//! * **Correctness** — the engine's property tests
//!   (`tests/sweep_engine.rs`) assert that sorted-tables poly,
//!   dominance-pruned exhaustive search and warm-started MILP are
//!   assignment-cost-identical to these paths across random instances
//!   and θ grids.
//! * **Measurement** — `synts-cli bench` times a θ sweep through
//!   [`poly_sweep_naive`]/[`milp_sweep_naive`] (the pre-engine
//!   `solve_batch`: tables hoisted, naive inner loops) against the
//!   engine, producing the `BENCH_PR5.json` speedup record.
//!
//! Nothing here is reachable from the [`crate::SolverRegistry`]; use the
//! registered solvers for real work.

use timing::ErrorModel;

use crate::error::OptError;
use crate::exhaustive::EXHAUSTIVE_LIMIT;
use crate::milp_formulation;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};
use crate::poly::{self, Tables};

fn validated_tables<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
) -> Result<Tables, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    Ok(Tables::build(cfg, profiles))
}

/// Algorithm 1 exactly as the paper states it: `O(M²Q²S²)` per θ.
///
/// # Errors
///
/// As [`crate::synts_poly`], except that θ is *not* domain-checked:
/// the naive scan is exact for any finite weight (pre-engine
/// behavior), so θ < 0 solves here where the engine refuses.
pub fn synts_poly_naive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    let t = validated_tables(cfg, profiles)?;
    poly::solve_on_tables(&t, theta)
}

/// The pre-engine batched θ sweep for Algorithm 1: tables built once
/// (the PR 2 hoist), then the naive scan per grid point.
///
/// # Errors
///
/// As [`synts_poly_naive`] — the first failing θ in grid order.
pub fn poly_sweep_naive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    thetas: &[f64],
) -> Result<Vec<Assignment>, OptError> {
    let t = validated_tables(cfg, profiles)?;
    thetas
        .iter()
        .map(|&theta| poly::solve_on_tables(&t, theta))
        .collect()
}

/// The cold SynTS-MILP solve: depth-first branch-and-bound from scratch,
/// no incumbent, per θ.
///
/// # Errors
///
/// As [`crate::synts_milp`], except that θ is *not* domain-checked
/// (see [`synts_poly_naive`]).
pub fn synts_milp_naive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    let t = validated_tables(cfg, profiles)?;
    milp_formulation::solve_on_tables(&t, theta)
}

/// The pre-engine batched θ sweep for SynTS-MILP: tables built once,
/// then a cold branch-and-bound per grid point.
///
/// # Errors
///
/// As [`synts_milp_naive`] — the first failing θ in grid order.
pub fn milp_sweep_naive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    thetas: &[f64],
) -> Result<Vec<Assignment>, OptError> {
    let t = validated_tables(cfg, profiles)?;
    thetas
        .iter()
        .map(|&theta| milp_formulation::solve_on_tables(&t, theta))
        .collect()
}

/// Brute force over the raw, unpruned `(Q·S)^M` grid — the pre-PR 5
/// exhaustive solver, including its original limit semantics (the cap
/// applies to the raw candidate count).
///
/// # Errors
///
/// As [`crate::synts_exhaustive`], with [`OptError::TooLarge`] judged
/// on the *unpruned* count and θ not domain-checked (see
/// [`synts_poly_naive`]).
pub fn synts_exhaustive_naive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let per_thread = (cfg.q() * cfg.s()) as u128;
    let m = profiles.len();
    let candidates = per_thread.checked_pow(m as u32).unwrap_or(u128::MAX);
    if candidates > EXHAUSTIVE_LIMIT {
        return Err(OptError::TooLarge {
            candidates,
            limit: EXHAUSTIVE_LIMIT,
        });
    }
    let t = Tables::build(cfg, profiles);
    let s = cfg.s();
    let n_points = cfg.q() * s;

    let mut best_cost = f64::INFINITY;
    let mut best_combo = vec![0usize; m];
    let mut combo = vec![0usize; m];
    loop {
        // Evaluate this combination.
        let mut energy = 0.0;
        let mut texec = 0.0f64;
        for (i, &idx) in combo.iter().enumerate() {
            energy += t.energy[i][idx];
            texec = texec.max(t.time[i][idx]);
        }
        let cost = energy + theta * texec;
        if cost < best_cost {
            best_cost = cost;
            best_combo.copy_from_slice(&combo);
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == m {
                let points = best_combo
                    .iter()
                    .map(|&idx| OperatingPoint {
                        voltage_idx: idx / s,
                        tsr_idx: idx % s,
                    })
                    .collect();
                return Ok(Assignment { points });
            }
            combo[pos] += 1;
            if combo[pos] < n_points {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::weighted_cost;
    use timing::ErrorCurve;

    fn instance() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.82, 1.0];
        let curve = |lo: f64, hi: f64| {
            ErrorCurve::from_normalized_delays(
                (0..128)
                    .map(|i| lo + (hi - lo) * i as f64 / 128.0)
                    .collect(),
            )
            .expect("non-empty")
        };
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
            ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
            ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn naive_paths_agree_with_production_solvers() {
        let (cfg, profiles) = instance();
        for theta in [0.0, 0.3, 1.0, 40.0] {
            let fast = crate::poly::synts_poly(&cfg, &profiles, theta).expect("poly");
            let naive = synts_poly_naive(&cfg, &profiles, theta).expect("naive poly");
            let (cf, cn) = (
                weighted_cost(&cfg, &profiles, &fast, theta),
                weighted_cost(&cfg, &profiles, &naive, theta),
            );
            assert!((cf - cn).abs() <= 1e-9 * cn.abs().max(1.0), "{cf} vs {cn}");

            let milp = crate::milp_formulation::synts_milp(&cfg, &profiles, theta).expect("milp");
            let milp_naive = synts_milp_naive(&cfg, &profiles, theta).expect("naive milp");
            let (cm, cmn) = (
                weighted_cost(&cfg, &profiles, &milp, theta),
                weighted_cost(&cfg, &profiles, &milp_naive, theta),
            );
            assert!(
                (cm - cmn).abs() <= 1e-6 * cmn.abs().max(1.0),
                "{cm} vs {cmn}"
            );

            let ex = crate::exhaustive::synts_exhaustive(&cfg, &profiles, theta).expect("ex");
            let ex_naive = synts_exhaustive_naive(&cfg, &profiles, theta).expect("naive ex");
            let (ce, cen) = (
                weighted_cost(&cfg, &profiles, &ex, theta),
                weighted_cost(&cfg, &profiles, &ex_naive, theta),
            );
            assert!(
                (ce - cen).abs() <= 1e-9 * cen.abs().max(1.0),
                "{ce} vs {cen}"
            );
        }
    }

    #[test]
    fn sweep_naive_matches_per_theta_naive() {
        let (cfg, profiles) = instance();
        let thetas = [0.0, 0.5, 2.0];
        let poly_sweep = poly_sweep_naive(&cfg, &profiles, &thetas).expect("sweep");
        let milp_sweep = milp_sweep_naive(&cfg, &profiles, &thetas).expect("sweep");
        for (i, &theta) in thetas.iter().enumerate() {
            assert_eq!(
                poly_sweep[i],
                synts_poly_naive(&cfg, &profiles, theta).expect("poly"),
            );
            assert_eq!(
                milp_sweep[i],
                synts_milp_naive(&cfg, &profiles, theta).expect("milp"),
            );
        }
    }
}
