//! The end-to-end experiment harness: workload kernels → gate-level
//! characterization → thread profiles → optimizers.
//!
//! This is the executable form of the paper's cross-layer methodology
//! (Fig 5.8): run an instrumented benchmark, replay each thread's operand
//! trace through a pipe-stage netlist, build the per-thread error curves
//! and CPI, and hand the result to SynTS and its baselines. The `repro`
//! binary and the integration tests are thin wrappers over this module.

use archsim::{CpiModel, InstrStream};
use circuits::StageKind;
use timing::{ErrorCurve, ErrorModel as _, StageCharacterizer};
use workloads::{Benchmark, ThreadWork, WorkloadConfig, WorkloadTrace};

use crate::error::OptError;
use crate::model::{SystemConfig, ThreadProfile};
use crate::online::ThreadTrace;

/// Knobs for the characterization harness.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Workload size and shape.
    pub workload: WorkloadConfig,
    /// Cap on gate-level simulations per (thread, interval): delays are
    /// subsampled beyond this (the expensive part of the flow).
    pub max_samples: usize,
    /// The CPI stall model.
    pub cpi_model: CpiModel,
}

impl HarnessConfig {
    /// Paper-shaped configuration: 4 threads, 3 barrier intervals,
    /// 12 000 timed instructions per thread-interval (enough that the
    /// online sampling phase gets ~200 instructions per TSR level).
    #[must_use]
    pub fn paper_default() -> HarnessConfig {
        HarnessConfig {
            workload: WorkloadConfig::paper_default(),
            max_samples: 12_000,
            cpi_model: CpiModel::paper_default(),
        }
    }

    /// A fast configuration for tests.
    #[must_use]
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            workload: WorkloadConfig::small(4),
            max_samples: 400,
            cpi_model: CpiModel::paper_default(),
        }
    }
}

/// One thread's characterization for one barrier interval.
#[derive(Debug, Clone)]
pub struct ThreadData {
    /// The exact error-probability curve (offline oracle).
    pub curve: ErrorCurve,
    /// Normalized sensitized delays in instruction order (subsampled).
    pub normalized_delays: Vec<f64>,
    /// Full dynamic instruction count of the interval (`N_i`).
    pub instructions: f64,
    /// Error-free CPI from the cache/pipeline model (`CPI_base_i`).
    pub cpi_base: f64,
}

/// One barrier interval across all threads.
#[derive(Debug, Clone)]
pub struct IntervalData {
    /// Per-thread characterizations.
    pub threads: Vec<ThreadData>,
}

impl IntervalData {
    /// Thread profiles for the offline optimizers.
    #[must_use]
    pub fn profiles(&self) -> Vec<ThreadProfile<ErrorCurve>> {
        self.threads
            .iter()
            .map(|t| ThreadProfile::new(t.instructions, t.cpi_base, t.curve.clone()))
            .collect()
    }

    /// Thread traces for the online controller.
    #[must_use]
    pub fn thread_traces(&self) -> Vec<ThreadTrace> {
        self.threads
            .iter()
            .map(|t| ThreadTrace::new(t.normalized_delays.clone(), t.cpi_base))
            .collect()
    }
}

/// A fully characterized benchmark on one pipe stage.
#[derive(Debug, Clone)]
pub struct BenchmarkData {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Which pipe stage.
    pub stage: StageKind,
    /// Stage nominal period at 1.0 V.
    pub tnom_v1: f64,
    /// Characterized barrier intervals.
    pub intervals: Vec<IntervalData>,
}

impl BenchmarkData {
    /// The paper-default [`SystemConfig`] for this stage.
    #[must_use]
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig::paper_default(self.tnom_v1)
    }

    /// The barrier interval with the widest per-thread error spread —
    /// the "illustrative barrier interval" the paper's per-interval
    /// figures show (for Radix, the rank-reduction interval). Returns 0
    /// when there are no intervals.
    #[must_use]
    pub fn most_heterogeneous_interval(&self) -> usize {
        let grid = [0.64, 0.7, 0.78, 0.86];
        let mut best = (0usize, 0.0f64);
        for (i, iv) in self.intervals.iter().enumerate() {
            let mut spread = 0.0f64;
            for &r in &grid {
                let errs: Vec<f64> = iv.threads.iter().map(|t| t.curve.err(r)).collect();
                let max = errs.iter().copied().fold(0.0f64, f64::max);
                let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
                spread = spread.max(max - min);
            }
            if spread > best.1 {
                best = (i, spread);
            }
        }
        best.0
    }
}

/// Characterizes one thread's work for one barrier interval on an
/// already-built stage — the unit task of the characterization pipeline.
/// [`characterize_workload_on`] maps this over every (interval, thread)
/// pair; the corpus build fans the same units out at (benchmark × stage ×
/// interval × thread) granularity, so exposing the unit keeps the two
/// paths bit-identical by construction.
///
/// # Errors
///
/// Propagates characterization failures ([`OptError::Timing`]). A thread
/// whose instructions never reach the stage is *not* an error — it yields
/// the zero-delay activity profile.
pub fn characterize_thread(
    charac: &StageCharacterizer,
    work: &ThreadWork,
    cfg: &HarnessConfig,
) -> Result<ThreadData, OptError> {
    // A thread whose instructions never reach this stage (e.g. a
    // multiply-free benchmark on the operand-isolated ComplexALU) cannot
    // err there at any clock: model it as a zero-delay activity profile.
    let (normalized, curve) = match charac.delay_trace_sampled(&work.events, cfg.max_samples) {
        Ok(trace) => {
            let normalized = trace.normalized();
            (normalized, ErrorCurve::from_trace(&trace))
        }
        Err(timing::TimingError::EmptyTrace) => {
            (Vec::new(), ErrorCurve::from_normalized_delays(vec![0.0])?)
        }
        Err(e) => return Err(e.into()),
    };
    let mul_ops = work.events.iter().filter(|e| e.op.is_complex()).count() as u64;
    let mem: Vec<(u64, bool)> = work.mem_refs.iter().map(|m| (m.addr, m.is_store)).collect();
    let stream = InstrStream {
        alu_ops: work.events.len() as u64 - mul_ops,
        mul_ops,
        mem_refs: &mem,
        branches: work.branches,
    };
    Ok(ThreadData {
        curve,
        normalized_delays: normalized,
        instructions: work.instructions() as f64,
        cpi_base: cfg.cpi_model.cpi(&stream),
    })
}

/// Characterizes an already-generated workload trace on one stage,
/// sequentially on the calling thread.
///
/// Every (interval, thread) pair is characterized through its own
/// simulator, so [`characterize_workload_pooled`] produces bit-identical
/// output at any worker count — use it when cores are available.
///
/// # Errors
///
/// Propagates characterization failures ([`OptError::Timing`]).
pub fn characterize_workload(
    trace: &WorkloadTrace,
    stage: StageKind,
    cfg: &HarnessConfig,
) -> Result<BenchmarkData, OptError> {
    characterize_workload_pooled(trace, stage, cfg, crate::parallel::ThreadPool::sequential())
}

/// Characterizes a workload trace on one stage with the (interval ×
/// thread) gate simulations fanned out across `pool`.
///
/// Each pair drives an independent [`gatelib::TimingSim`] and results are
/// collected in index order, so the output is bit-identical to the
/// sequential loop at any worker count.
///
/// # Errors
///
/// Propagates characterization failures ([`OptError::Timing`]),
/// surfacing the lowest-index failure like a sequential loop would.
pub fn characterize_workload_pooled(
    trace: &WorkloadTrace,
    stage: StageKind,
    cfg: &HarnessConfig,
    pool: crate::parallel::ThreadPool,
) -> Result<BenchmarkData, OptError> {
    let charac = StageCharacterizer::new(stage, cfg.workload.width)?;
    characterize_workload_on(&charac, trace, cfg, pool)
}

/// [`characterize_workload_pooled`] over an already-built characterizer —
/// callers that have the stage in hand (e.g. the cache, which fingerprints
/// the netlist first) avoid rebuilding it.
///
/// # Errors
///
/// As [`characterize_workload_pooled`].
pub fn characterize_workload_on(
    charac: &StageCharacterizer,
    trace: &WorkloadTrace,
    cfg: &HarnessConfig,
    pool: crate::parallel::ThreadPool,
) -> Result<BenchmarkData, OptError> {
    // Flatten (interval, thread) into one work list: intervals are few
    // (the paper uses 3) but threads × intervals fills a pool.
    let works: Vec<&ThreadWork> = trace
        .intervals
        .iter()
        .flat_map(|interval| interval.iter())
        .collect();
    let data = pool.try_map(&works, |_, work| characterize_thread(charac, work, cfg))?;
    let mut data = data.into_iter();
    let intervals = trace
        .intervals
        .iter()
        .map(|interval| IntervalData {
            threads: data.by_ref().take(interval.threads()).collect(),
        })
        .collect();
    Ok(BenchmarkData {
        benchmark: trace.benchmark,
        stage: charac.stage().kind(),
        tnom_v1: charac.tnom_v1(),
        intervals,
    })
}

/// Runs and characterizes a benchmark on one stage.
///
/// # Errors
///
/// Propagates characterization failures ([`OptError::Timing`]).
pub fn characterize(
    benchmark: Benchmark,
    stage: StageKind,
    cfg: &HarnessConfig,
) -> Result<BenchmarkData, OptError> {
    let trace = benchmark.run(&cfg.workload);
    characterize_workload(&trace, stage, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::{heterogeneity, ErrorModel};

    fn max_heterogeneity(curves: &[ErrorCurve]) -> f64 {
        let mut max_het: f64 = 1.0;
        for r in [0.64, 0.7, 0.78, 0.86] {
            let h = heterogeneity(curves, r);
            if h.is_finite() {
                max_het = max_het.max(h);
            } else if curves.iter().any(|c| c.err(r) > 0.05) {
                return f64::INFINITY;
            }
        }
        max_het
    }

    fn interval_curves(data: &BenchmarkData, interval: usize) -> Vec<ErrorCurve> {
        data.intervals[interval]
            .threads
            .iter()
            .map(|t| t.curve.clone())
            .collect()
    }

    /// The interval with the widest per-thread error spread.
    fn most_heterogeneous(data: &BenchmarkData) -> usize {
        let grid = [0.64, 0.7, 0.78, 0.86];
        let mut best = (0usize, 0.0f64);
        for (i, iv) in data.intervals.iter().enumerate() {
            let mut spread = 0.0f64;
            for &r in &grid {
                let errs: Vec<f64> = iv.threads.iter().map(|t| t.curve.err(r)).collect();
                let max = errs.iter().copied().fold(0.0f64, f64::max);
                let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
                spread = spread.max(max - min);
            }
            if spread > best.1 {
                best = (i, spread);
            }
        }
        best.0
    }

    #[test]
    fn radix_decode_shows_strong_thread_heterogeneity() {
        // The paper's motivating observation (Fig 3.5): Radix's worst
        // thread (thread 0, the rank-reduction root) has several times the
        // error probability of the best thread.
        let cfg = HarnessConfig::quick();
        let data = characterize(Benchmark::Radix, StageKind::Decode, &cfg).expect("ok");
        let curves = interval_curves(&data, most_heterogeneous(&data));
        let h = max_heterogeneity(&curves);
        assert!(h > 2.0, "Radix decode heterogeneity, got {h}");
        // And thread 0 is the critical one, as in the paper.
        let r = 0.64;
        let worst = curves
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.err(r).partial_cmp(&b.1.err(r)).expect("finite"))
            .expect("non-empty")
            .0;
        assert_eq!(worst, 0, "thread 0 must be speculation-critical");
    }

    #[test]
    fn radix_simple_alu_is_heterogeneous() {
        let cfg = HarnessConfig::quick();
        let data = characterize(Benchmark::Radix, StageKind::SimpleAlu, &cfg).expect("ok");
        let curves = interval_curves(&data, most_heterogeneous(&data));
        let h = max_heterogeneity(&curves);
        assert!(h > 1.2, "Radix SimpleALU heterogeneity, got {h}");
    }

    #[test]
    fn interval_profiles_are_well_formed() {
        let cfg = HarnessConfig::quick();
        let data = characterize(Benchmark::Fmm, StageKind::SimpleAlu, &cfg).expect("ok");
        assert_eq!(data.intervals.len(), cfg.workload.intervals);
        for iv in &data.intervals {
            let profiles = iv.profiles();
            assert_eq!(profiles.len(), cfg.workload.threads);
            for p in &profiles {
                assert!(p.instructions > 0.0);
                assert!(p.cpi_base >= 1.0);
                assert_eq!(p.err.err(1.0), 0.0, "no errors at nominal clock");
            }
        }
    }

    #[test]
    fn thread_traces_align_with_profiles() {
        let cfg = HarnessConfig::quick();
        let data = characterize(Benchmark::Ocean, StageKind::Decode, &cfg).expect("ok");
        let iv = &data.intervals[0];
        let traces = iv.thread_traces();
        assert_eq!(traces.len(), iv.threads.len());
        for (tr, td) in traces.iter().zip(&iv.threads) {
            assert_eq!(tr.normalized_delays.len(), td.normalized_delays.len());
            assert!((tr.cpi_base - td.cpi_base).abs() < 1e-12);
        }
    }
}
