//! Online workload (`N_i`) prediction — closing the paper's last oracle.
//!
//! Sec 6.2 assumes "the information on workload heterogeneity (`N_i` for
//! each thread) is available from offline characterization or using online
//! workload prediction techniques proposed in the literature [8, 15, 16]".
//! This module supplies those predictors: per-thread instruction counts
//! for the next barrier interval are forecast from the counts of previous
//! intervals, in the spirit of thread-criticality predictors
//! (Bhattacharjee & Martonosi) and barrier-history DVFS (Liu et al.).
//!
//! Because Eq 4.1–4.3 are linear in `N_i`, a *common* misprediction
//! factor across threads cancels out of the argmin — only the predicted
//! *ratio* between threads matters (verified by a test below). History
//! predictors are therefore accurate enough in practice, as Fig 6.18's
//! online results presume.
//!
//! [`run_sequence`] drives the full online controller over a multi-
//! interval workload with predicted `N_i`, charging everything against
//! the true traces — the end-to-end "no oracles left" configuration.

use serde::{Deserialize, Serialize};
use timing::EnergyDelay;

use crate::error::OptError;
use crate::model::SystemConfig;
use crate::online::{IntervalOutcome, SamplingPlan, ThreadTrace};

/// Forecasting rule for per-thread interval instruction counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Next interval repeats the last observed count (one-interval lag;
    /// exact for stationary workloads after one observation).
    LastValue,
    /// Exponentially weighted moving average with smoothing factor
    /// `alpha ∈ (0, 1]`: `est ← α·obs + (1−α)·est`.
    Ewma(f64),
    /// Arithmetic mean of the last `k ≥ 1` observations.
    WindowMean(usize),
}

/// Per-thread `N_i` predictor with interval-granularity history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NiPredictor {
    kind: PredictorKind,
    /// Per-thread observation history (windowed predictors keep only what
    /// they need).
    history: Vec<Vec<f64>>,
    /// Per-thread EWMA state.
    ewma: Vec<Option<f64>>,
    observed: usize,
}

impl NiPredictor {
    /// Creates a predictor for `threads` threads.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::BadConfig`] for zero threads, an EWMA alpha
    /// outside `(0, 1]`, or a zero-length window.
    pub fn new(threads: usize, kind: PredictorKind) -> Result<NiPredictor, OptError> {
        if threads == 0 {
            return Err(OptError::BadConfig("predictor needs at least one thread"));
        }
        match kind {
            PredictorKind::Ewma(a) if !(a > 0.0 && a <= 1.0) => {
                return Err(OptError::BadConfig("EWMA alpha must lie in (0, 1]"));
            }
            PredictorKind::WindowMean(0) => {
                return Err(OptError::BadConfig("window must hold >= 1 interval"));
            }
            _ => {}
        }
        Ok(NiPredictor {
            kind,
            history: vec![Vec::new(); threads],
            ewma: vec![None; threads],
            observed: 0,
        })
    }

    /// Number of threads covered.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.history.len()
    }

    /// Number of intervals observed so far.
    #[must_use]
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Predicted `N_i` for the next interval, or `None` before the first
    /// observation (callers fall back to a uniform split — see
    /// [`run_sequence`]).
    #[must_use]
    pub fn predict(&self) -> Option<Vec<f64>> {
        if self.observed == 0 {
            return None;
        }
        Some(match self.kind {
            PredictorKind::LastValue => self
                .history
                .iter()
                .map(|h| *h.last().expect("observed > 0"))
                .collect(),
            PredictorKind::Ewma(_) => self.ewma.iter().map(|e| e.expect("observed > 0")).collect(),
            PredictorKind::WindowMean(k) => self
                .history
                .iter()
                .map(|h| {
                    let tail = &h[h.len().saturating_sub(k)..];
                    tail.iter().sum::<f64>() / tail.len() as f64
                })
                .collect(),
        })
    }

    /// Records the true per-thread counts of a completed interval.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::BadConfig`] on a thread-count mismatch or a
    /// non-finite/negative count.
    pub fn observe(&mut self, ni: &[f64]) -> Result<(), OptError> {
        if ni.len() != self.history.len() {
            return Err(OptError::BadConfig("observation thread count mismatch"));
        }
        for &n in ni {
            if !n.is_finite() || n < 0.0 {
                return Err(OptError::BadConfig("instruction counts must be >= 0"));
            }
        }
        let keep = match self.kind {
            PredictorKind::WindowMean(k) => k,
            _ => 1,
        };
        for (i, &n) in ni.iter().enumerate() {
            let h = &mut self.history[i];
            h.push(n);
            if h.len() > keep {
                let drop = h.len() - keep;
                h.drain(..drop);
            }
            let e = &mut self.ewma[i];
            if let PredictorKind::Ewma(a) = self.kind {
                *e = Some(match *e {
                    None => n,
                    Some(prev) => a * n + (1.0 - a) * prev,
                });
            }
        }
        self.observed += 1;
        Ok(())
    }
}

/// Prediction quality over a driven sequence: mean absolute percentage
/// error of the `N_i` forecasts, per interval they were used in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionStats {
    /// MAPE of each predicted interval (intervals with no prediction —
    /// the first — are skipped).
    pub mape_per_interval: Vec<f64>,
}

impl PredictionStats {
    /// Mean MAPE across all predicted intervals (0 if none).
    #[must_use]
    pub fn mean_mape(&self) -> f64 {
        if self.mape_per_interval.is_empty() {
            return 0.0;
        }
        self.mape_per_interval.iter().sum::<f64>() / self.mape_per_interval.len() as f64
    }
}

/// Result of driving the online controller over a whole barrier sequence
/// with predicted `N_i`.
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Per-interval controller outcomes (assignments, overheads, totals).
    pub intervals: Vec<IntervalOutcome>,
    /// Whole-run energy/time: energies summed, interval times summed
    /// (barriers serialize intervals).
    pub total: EnergyDelay,
    /// Forecast quality.
    pub prediction: PredictionStats,
}

/// Runs the sampling-based online controller (Sec 4.3) over a sequence of
/// barrier intervals, forecasting each interval's `N_i` with `predictor`
/// instead of reading it from the trace (the paper's remaining oracle).
///
/// The first interval has no history; the controller falls back to a
/// uniform `N_i` guess, which — by the ratio-invariance of Eq 4.4 — is
/// the assumption-free default. Sampling, optimization and accounting
/// against the true traces proceed exactly as in
/// [`run_interval`](crate::online::run_interval).
///
/// # Errors
///
/// Propagates [`OptError`] from the per-interval controller; rejects an
/// empty sequence or intervals whose thread count differs from the
/// predictor's.
pub fn run_sequence(
    cfg: &SystemConfig,
    intervals: &[Vec<ThreadTrace>],
    theta: f64,
    plan: SamplingPlan,
    predictor: &mut NiPredictor,
) -> Result<SequenceOutcome, OptError> {
    if intervals.is_empty() {
        return Err(OptError::NoThreads);
    }
    let m = predictor.threads();
    let mut outcomes = Vec::with_capacity(intervals.len());
    let mut total_energy = 0.0;
    let mut total_time = 0.0;
    let mut mapes = Vec::new();
    for traces in intervals {
        if traces.len() != m {
            return Err(OptError::BadConfig("interval thread count mismatch"));
        }
        let truth: Vec<f64> = traces
            .iter()
            .map(|t| t.normalized_delays.len() as f64)
            .collect();
        let predicted = predictor.predict();
        if let Some(pred) = &predicted {
            let mape = pred
                .iter()
                .zip(&truth)
                .map(|(p, t)| if *t > 0.0 { (p - t).abs() / t } else { 0.0 })
                .sum::<f64>()
                / m as f64;
            mapes.push(mape);
        }
        // Substitute predicted counts by rescaling each thread's trace
        // weight: run the controller on traces truncated/extended is not
        // physical — instead pass the prediction through the profile Ni.
        let outcome = run_interval_with_ni(cfg, traces, theta, plan, predicted.as_deref())?;
        total_energy += outcome.total.energy;
        total_time += outcome.total.time;
        outcomes.push(outcome);
        predictor.observe(&truth)?;
    }
    Ok(SequenceOutcome {
        intervals: outcomes,
        total: EnergyDelay::new(total_energy, total_time),
        prediction: PredictionStats {
            mape_per_interval: mapes,
        },
    })
}

/// [`run_interval`](crate::online::run_interval) with externally supplied `N_i` estimates for
/// the optimization step (accounting still uses the true traces). `None`
/// falls back to a uniform split across threads.
///
/// # Errors
///
/// As [`run_interval`](crate::online::run_interval), plus [`OptError::BadConfig`] if `ni`
/// has the wrong length or non-positive entries.
pub fn run_interval_with_ni(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
    plan: SamplingPlan,
    ni: Option<&[f64]>,
) -> Result<IntervalOutcome, OptError> {
    match ni {
        None => {
            // Uniform guess: every thread assumed to run the mean length.
            let mean = traces
                .iter()
                .map(|t| t.normalized_delays.len() as f64)
                .sum::<f64>()
                / traces.len().max(1) as f64;
            let uniform = vec![mean.max(1.0); traces.len()];
            crate::online::run_interval_with_workload(cfg, traces, theta, plan, &uniform)
        }
        Some(est) => {
            if est.len() != traces.len() {
                return Err(OptError::BadConfig("Ni estimate thread count mismatch"));
            }
            for &n in est {
                if !n.is_finite() || n <= 0.0 {
                    return Err(OptError::BadConfig("Ni estimates must be positive"));
                }
            }
            crate::online::run_interval_with_workload(cfg, traces, theta, plan, est)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::run_interval;
    use timing::Voltage;

    fn trace(seed: u64, n: usize, lo: f64, hi: f64) -> ThreadTrace {
        let mut state = seed;
        let delays = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 33) as f64 / (1u64 << 31) as f64;
                lo + (hi - lo) * u
            })
            .collect();
        ThreadTrace::new(delays, 1.0)
    }

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default(10.0)
    }

    #[test]
    fn constructor_validates() {
        assert!(NiPredictor::new(0, PredictorKind::LastValue).is_err());
        assert!(NiPredictor::new(2, PredictorKind::Ewma(0.0)).is_err());
        assert!(NiPredictor::new(2, PredictorKind::Ewma(1.5)).is_err());
        assert!(NiPredictor::new(2, PredictorKind::WindowMean(0)).is_err());
        assert!(NiPredictor::new(2, PredictorKind::Ewma(1.0)).is_ok());
    }

    #[test]
    fn no_prediction_before_first_observation() {
        let p = NiPredictor::new(2, PredictorKind::LastValue).expect("ok");
        assert!(p.predict().is_none());
    }

    #[test]
    fn observe_validates_shape_and_values() {
        let mut p = NiPredictor::new(2, PredictorKind::LastValue).expect("ok");
        assert!(p.observe(&[1.0]).is_err(), "wrong thread count");
        assert!(p.observe(&[1.0, f64::NAN]).is_err(), "NaN count");
        assert!(p.observe(&[1.0, -3.0]).is_err(), "negative count");
        assert!(p.observe(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn last_value_repeats_history() {
        let mut p = NiPredictor::new(2, PredictorKind::LastValue).expect("ok");
        p.observe(&[100.0, 200.0]).expect("ok");
        p.observe(&[150.0, 300.0]).expect("ok");
        assert_eq!(p.predict().expect("observed"), vec![150.0, 300.0]);
    }

    #[test]
    fn ewma_converges_on_stationary_input() {
        let mut p = NiPredictor::new(1, PredictorKind::Ewma(0.5)).expect("ok");
        for _ in 0..20 {
            p.observe(&[1000.0]).expect("ok");
        }
        let est = p.predict().expect("observed")[0];
        assert!((est - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_smooths_noise_better_than_last_value() {
        // Alternating 900/1100 around mean 1000: EWMA(0.2)'s error is
        // smaller than LastValue's persistent ±200 swing.
        let mut ew = NiPredictor::new(1, PredictorKind::Ewma(0.2)).expect("ok");
        let mut lv = NiPredictor::new(1, PredictorKind::LastValue).expect("ok");
        let mut err_ew = 0.0;
        let mut err_lv = 0.0;
        for t in 0..40 {
            let truth = if t % 2 == 0 { 900.0 } else { 1100.0 };
            if let Some(e) = ew.predict() {
                err_ew += (e[0] - truth).abs();
            }
            if let Some(e) = lv.predict() {
                err_lv += (e[0] - truth).abs();
            }
            ew.observe(&[truth]).expect("ok");
            lv.observe(&[truth]).expect("ok");
        }
        assert!(err_ew < err_lv, "EWMA {err_ew} vs LastValue {err_lv}");
    }

    #[test]
    fn window_mean_keeps_only_k() {
        let mut p = NiPredictor::new(1, PredictorKind::WindowMean(2)).expect("ok");
        for n in [100.0, 200.0, 300.0, 400.0] {
            p.observe(&[n]).expect("ok");
        }
        // Mean of the last two: (300 + 400)/2.
        assert_eq!(p.predict().expect("observed"), vec![350.0]);
    }

    #[test]
    fn sequence_with_stationary_workload_matches_oracle_closely() {
        let cfg = cfg();
        // 4 threads, stable per-interval lengths and delay bands.
        let make_interval = |k: u64| {
            vec![
                trace(k * 10 + 1, 6000, 0.70, 1.00),
                trace(k * 10 + 2, 3000, 0.45, 0.90),
                trace(k * 10 + 3, 4500, 0.50, 0.92),
                trace(k * 10 + 4, 3600, 0.40, 0.88),
            ]
        };
        let intervals: Vec<_> = (0..4).map(make_interval).collect();
        let plan = SamplingPlan {
            n_samp: 600,
            v_samp: Voltage::NOMINAL,
            transition_cycles: 0.0,
        };
        let mut predictor = NiPredictor::new(4, PredictorKind::LastValue).expect("ok");
        let seq = run_sequence(&cfg, &intervals, 1.0, plan, &mut predictor).expect("ok");
        assert_eq!(seq.intervals.len(), 4);
        // Stationary: after interval 1 the forecast is exact.
        assert!(seq.prediction.mean_mape() < 1e-9);
        // Oracle comparison: per-interval oracle Ni.
        let mut oracle_energy = 0.0;
        let mut oracle_time = 0.0;
        for traces in &intervals {
            let out = run_interval(&cfg, traces, 1.0, plan).expect("ok");
            oracle_energy += out.total.energy;
            oracle_time += out.total.time;
        }
        let edp_pred = seq.total.edp();
        let edp_oracle = oracle_energy * oracle_time;
        let ratio = edp_pred / edp_oracle;
        assert!(
            (0.9..1.1).contains(&ratio),
            "stationary prediction should match oracle: ratio {ratio}"
        );
    }

    #[test]
    fn sequence_rejects_mismatched_thread_counts() {
        let cfg = cfg();
        let intervals = vec![vec![trace(1, 1000, 0.4, 0.9)]];
        let mut predictor = NiPredictor::new(2, PredictorKind::LastValue).expect("ok");
        let plan = SamplingPlan {
            n_samp: 100,
            v_samp: Voltage::NOMINAL,
            transition_cycles: 0.0,
        };
        assert!(run_sequence(&cfg, &intervals, 1.0, plan, &mut predictor).is_err());
    }

    #[test]
    fn uniform_fallback_used_on_first_interval() {
        let cfg = cfg();
        let intervals = vec![vec![trace(1, 4000, 0.6, 1.0), trace(2, 4000, 0.4, 0.9)]];
        let plan = SamplingPlan {
            n_samp: 400,
            v_samp: Voltage::NOMINAL,
            transition_cycles: 0.0,
        };
        let mut predictor = NiPredictor::new(2, PredictorKind::Ewma(0.5)).expect("ok");
        let seq = run_sequence(&cfg, &intervals, 1.0, plan, &mut predictor).expect("ok");
        // One interval, no prediction was possible, so no MAPE recorded.
        assert!(seq.prediction.mape_per_interval.is_empty());
        assert_eq!(predictor.observed(), 1);
    }

    #[test]
    fn scaling_all_ni_by_constant_leaves_assignment_unchanged() {
        // The ratio-invariance property the module doc claims: the argmin
        // of Eq 4.4 depends on relative, not absolute, Ni.
        use crate::model::ThreadProfile;
        use crate::poly::synts_poly;
        use timing::ErrorCurve;
        let cfg = cfg();
        let curve = |lo: f64, hi: f64| {
            let d: Vec<f64> = (0..100)
                .map(|i| lo + (hi - lo) * i as f64 / 100.0)
                .collect();
            ErrorCurve::from_normalized_delays(d).expect("ok")
        };
        let base = vec![
            ThreadProfile::new(5_000.0, 1.2, curve(0.7, 1.0)),
            ThreadProfile::new(3_000.0, 1.0, curve(0.4, 0.9)),
        ];
        let scaled: Vec<_> = base
            .iter()
            .map(|p| ThreadProfile::new(p.instructions * 7.5, p.cpi_base, p.err.clone()))
            .collect();
        // theta scales with the same factor to keep the trade-off fixed:
        // cost = E + θT where both E and T are linear in the common factor.
        let a = synts_poly(&cfg, &base, 2.0).expect("ok");
        let b = synts_poly(&cfg, &scaled, 2.0).expect("ok");
        assert_eq!(a, b);
    }
}
