//! Beyond barriers — the paper's future-work direction (Conclusion:
//! "this approach can be extended to multi-threaded applications that use
//! other synchronization mechanisms").
//!
//! This module covers the most common non-barrier structure: a shared
//! **task queue** (work stealing / dynamic scheduling), where threads pull
//! work items until the queue drains. There is no per-thread `N_i`: every
//! thread stays busy to the end, so the interval time is governed by the
//! *aggregate throughput* rather than a max over threads:
//!
//! ```text
//! T = W / Σ_i λ_i,    λ_i = 1 / SPI_i = 1 / (t_clk_i (p_i C + CPI_i))
//! ```
//!
//! and thread `i` executes `N_i = T·λ_i` of the `W` items. Energy keeps its
//! Eq 4.3 shape over those `N_i`. The trade-off differs qualitatively from
//! barriers: slowing any thread now always costs time (there is no slack
//! from waiting at a barrier), so the optimum couples the cores through the
//! throughput *sum* instead of the *max*.

use timing::{EnergyDelay, ErrorModel};

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig};

/// A thread's static characteristics under dynamic scheduling (no fixed
/// `N_i` — work is pulled from the queue).
#[derive(Debug, Clone)]
pub struct QueueThread<M> {
    /// Error-free CPI of the thread on this stage.
    pub cpi_base: f64,
    /// The thread's error-probability model.
    pub err: M,
}

/// Evaluates a task-queue interval: total energy and drain time for `work`
/// items under the given assignment.
///
/// # Panics
///
/// Panics if `assignment` and `threads` disagree on the thread count.
#[must_use]
pub fn evaluate_task_queue<M: ErrorModel>(
    cfg: &SystemConfig,
    threads: &[QueueThread<M>],
    work: f64,
    assignment: &Assignment,
) -> EnergyDelay {
    assert_eq!(threads.len(), assignment.len(), "one point per thread");
    let mut rate_sum = 0.0;
    let mut spi = Vec::with_capacity(threads.len());
    for (th, &pt) in threads.iter().zip(&assignment.points) {
        let r = cfg.tsr_levels[pt.tsr_idx];
        let p = th.err.err(r);
        let s = cfg.tclk(pt.voltage_idx, pt.tsr_idx) * (p * cfg.c_penalty + th.cpi_base);
        spi.push((s, p));
        rate_sum += 1.0 / s;
    }
    let time = work / rate_sum;
    let mut energy = 0.0;
    for ((s, p), (th, &pt)) in spi.iter().zip(threads.iter().zip(&assignment.points)) {
        let n_i = time / s;
        let v = cfg.voltages.levels()[pt.voltage_idx];
        energy += cfg.alpha * v.energy_scale() * n_i * (p * cfg.c_penalty + th.cpi_base);
    }
    EnergyDelay::new(energy, time)
}

/// Optimal per-thread operating points for a task-queue interval,
/// minimizing `energy + θ·T` by exhaustive search over `(Q·S)^M`
/// (the coupling through the throughput sum breaks the per-thread
/// decomposition Algorithm 1 exploits, so for the paper-scale `M = 4`
/// exhaustive search is the exact reference; the candidate cap guards
/// larger instances).
///
/// # Errors
///
/// * [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input;
/// * [`OptError::TooLarge`] if the search space exceeds the exhaustive cap.
pub fn optimize_task_queue<M: ErrorModel>(
    cfg: &SystemConfig,
    threads: &[QueueThread<M>],
    work: f64,
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if threads.is_empty() {
        return Err(OptError::NoThreads);
    }
    let per = (cfg.q() * cfg.s()) as u128;
    let candidates = per.checked_pow(threads.len() as u32).unwrap_or(u128::MAX);
    if candidates > crate::exhaustive::EXHAUSTIVE_LIMIT {
        return Err(OptError::TooLarge {
            candidates,
            limit: crate::exhaustive::EXHAUSTIVE_LIMIT,
        });
    }
    let s = cfg.s();
    let n_points = cfg.q() * s;
    let m = threads.len();
    let mut combo = vec![0usize; m];
    let mut best = (f64::INFINITY, combo.clone());
    loop {
        let assignment = Assignment {
            points: combo
                .iter()
                .map(|&idx| OperatingPoint {
                    voltage_idx: idx / s,
                    tsr_idx: idx % s,
                })
                .collect(),
        };
        let ed = evaluate_task_queue(cfg, threads, work, &assignment);
        let cost = ed.energy + theta * ed.time;
        if cost < best.0 {
            best = (cost, combo.clone());
        }
        let mut pos = 0;
        loop {
            if pos == m {
                return Ok(Assignment {
                    points: best
                        .1
                        .iter()
                        .map(|&idx| OperatingPoint {
                            voltage_idx: idx / s,
                            tsr_idx: idx % s,
                        })
                        .collect(),
                });
            }
            combo[pos] += 1;
            if combo[pos] < n_points {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::ErrorCurve;

    fn curve(lo: f64, hi: f64) -> ErrorCurve {
        let delays: Vec<f64> = (0..128)
            .map(|i| lo + (hi - lo) * i as f64 / 128.0)
            .collect();
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.8, 1.0];
        cfg
    }

    fn threads() -> Vec<QueueThread<ErrorCurve>> {
        vec![
            QueueThread {
                cpi_base: 1.2,
                err: curve(0.7, 1.0),
            },
            QueueThread {
                cpi_base: 1.0,
                err: curve(0.4, 0.85),
            },
        ]
    }

    #[test]
    fn queue_time_follows_aggregate_throughput() {
        let cfg = small_cfg();
        let ths = threads();
        let nominal = Assignment::uniform(
            2,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 2,
            },
        );
        let ed = evaluate_task_queue(&cfg, &ths, 10_000.0, &nominal);
        // By hand: T = W / (1/SPI0 + 1/SPI1) with p = 0 at r = 1.
        let spi0 = 10.0 * 1.2;
        let spi1 = 10.0 * 1.0;
        let expect = 10_000.0 / (1.0 / spi0 + 1.0 / spi1);
        assert!((ed.time - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn theta_extremes_behave() {
        let cfg = small_cfg();
        let ths = threads();
        let fast = optimize_task_queue(&cfg, &ths, 10_000.0, 1e12).expect("solves");
        let frugal = optimize_task_queue(&cfg, &ths, 10_000.0, 1e-12).expect("solves");
        let ed_fast = evaluate_task_queue(&cfg, &ths, 10_000.0, &fast);
        let ed_frugal = evaluate_task_queue(&cfg, &ths, 10_000.0, &frugal);
        assert!(ed_fast.time <= ed_frugal.time + 1e-9);
        assert!(ed_frugal.energy <= ed_fast.energy + 1e-9);
    }

    #[test]
    fn no_barrier_slack_to_harvest() {
        // Unlike barriers, lowering any thread's voltage at fixed r always
        // stretches the drain time (there is no "free" slack).
        let cfg = small_cfg();
        let ths = threads();
        let all_nominal = Assignment::uniform(
            2,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 2,
            },
        );
        let one_slow = Assignment {
            points: vec![
                OperatingPoint {
                    voltage_idx: 0,
                    tsr_idx: 2,
                },
                OperatingPoint {
                    voltage_idx: 2,
                    tsr_idx: 2,
                },
            ],
        };
        let a = evaluate_task_queue(&cfg, &ths, 10_000.0, &all_nominal);
        let b = evaluate_task_queue(&cfg, &ths, 10_000.0, &one_slow);
        assert!(
            b.time > a.time,
            "queue drain must slow down: {} vs {}",
            b.time,
            a.time
        );
    }

    #[test]
    fn optimum_beats_random_points() {
        let cfg = small_cfg();
        let ths = threads();
        let theta = 1.0;
        let opt = optimize_task_queue(&cfg, &ths, 10_000.0, theta).expect("solves");
        let ed_opt = evaluate_task_queue(&cfg, &ths, 10_000.0, &opt);
        let c_opt = ed_opt.energy + theta * ed_opt.time;
        let mut state = 7u64;
        for _ in 0..50 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = Assignment {
                points: (0..2)
                    .map(|k| OperatingPoint {
                        voltage_idx: ((state >> (8 * k)) as usize) % cfg.q(),
                        tsr_idx: ((state >> (8 * k + 4)) as usize) % cfg.s(),
                    })
                    .collect(),
            };
            let ed = evaluate_task_queue(&cfg, &ths, 10_000.0, &a);
            assert!(ed.energy + theta * ed.time >= c_opt - 1e-9 * c_opt);
        }
    }

    #[test]
    fn oversized_search_rejected() {
        let cfg = SystemConfig::paper_default(10.0); // 42 points
        let ths: Vec<QueueThread<ErrorCurve>> = (0..5)
            .map(|_| QueueThread {
                cpi_base: 1.0,
                err: curve(0.3, 0.9),
            })
            .collect();
        assert!(matches!(
            optimize_task_queue(&cfg, &ths, 1.0, 1.0).expect_err("too big"),
            OptError::TooLarge { .. }
        ));
    }
}
