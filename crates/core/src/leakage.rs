//! Leakage-power extension of the system model.
//!
//! The paper's Sec 4.1 notes that Eq 4.3 "does not currently account for
//! leakage power, \[but\] it can be easily extended to do so". This module
//! is that extension: a voltage-dependent static-power term charged over
//! wall-clock time, including the **idle tail** a non-critical thread
//! spends parked at the barrier after finishing its work.
//!
//! Per thread `i`, interval energy becomes
//!
//! ```text
//! en_i = α V_i² N_i (p_i C + CPI_i)              (Eq 4.3, dynamic)
//!      + P_leak(V_i) · t_i                        (active leakage)
//!      + κ · P_leak(V_i) · (t_exec − t_i)         (idle leakage at barrier)
//! ```
//!
//! with `P_leak(V) = P₀ Vᵞ` and `κ ∈ [0, 1]` the idle retention factor
//! (1 = the core sits parked at its operating voltage, 0 = perfect power
//! gating while waiting). The waiting core is assumed to stay at the
//! voltage it ran at — the conservative choice for a core without a
//! per-barrier voltage transition.
//!
//! Crucially, the decomposition that makes Algorithm 1 exact survives:
//! given a candidate barrier time `t_exec` (pinned by the critical
//! thread's operating point), each non-critical thread's energy still
//! depends only on its *own* operating point. [`synts_poly_leakage`]
//! exploits this and remains provably optimal — certified against
//! [`synts_exhaustive_leakage`] in the tests.

use serde::{Deserialize, Serialize};
use timing::{EnergyDelay, ErrorModel};

use crate::error::OptError;
use crate::exhaustive::EXHAUSTIVE_LIMIT;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};

/// Voltage-dependent static (leakage) power: `P_leak(V) = P₀ · Vᵞ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Leakage power at the nominal 1.0 V, in the model's energy unit per
    /// delay unit (the same time base as [`SystemConfig::tnom_v1`]).
    pub p_leak_nominal: f64,
    /// Voltage exponent `γ`. Architecture-level models cluster around 3
    /// (supply current roughly quadratic in V, power one factor higher).
    pub voltage_exponent: f64,
    /// Idle retention factor `κ`: fraction of leakage power still burned
    /// while a finished thread waits at the barrier.
    pub idle_scale: f64,
}

impl LeakageModel {
    /// No leakage at all; reduces every function in this module to the
    /// paper's original Eq 4.2/4.3 behaviour.
    #[must_use]
    pub fn none() -> LeakageModel {
        LeakageModel {
            p_leak_nominal: 0.0,
            voltage_exponent: 3.0,
            idle_scale: 1.0,
        }
    }

    /// A typical planar-22 nm share: leakage at nominal voltage equal to
    /// `frac` of the dynamic power of a CPI-1 thread running error-free at
    /// `(1.0 V, r = 1)` under `cfg`. Literature puts `frac` near 0.2–0.35
    /// for this node class.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::BadConfig`] if `frac` is not finite and
    /// non-negative or `cfg` itself is invalid.
    pub fn fraction_of_dynamic(cfg: &SystemConfig, frac: f64) -> Result<LeakageModel, OptError> {
        cfg.validate()?;
        if !frac.is_finite() || frac < 0.0 {
            return Err(OptError::BadConfig("leakage fraction must be >= 0"));
        }
        // Dynamic power of the reference thread: α·V²·(1 cycle) per t_nom.
        let p_dyn = cfg.alpha / cfg.tnom_v1;
        Ok(LeakageModel {
            p_leak_nominal: frac * p_dyn,
            voltage_exponent: 3.0,
            idle_scale: 1.0,
        })
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::BadConfig`] naming the first violation.
    pub fn validate(&self) -> Result<(), OptError> {
        if !self.p_leak_nominal.is_finite() || self.p_leak_nominal < 0.0 {
            return Err(OptError::BadConfig("leakage power must be >= 0"));
        }
        if !(0.0..=6.0).contains(&self.voltage_exponent) {
            return Err(OptError::BadConfig("leakage exponent out of [0, 6]"));
        }
        if !(0.0..=1.0).contains(&self.idle_scale) || self.idle_scale.is_nan() {
            return Err(OptError::BadConfig("idle retention out of [0, 1]"));
        }
        Ok(())
    }

    /// Leakage power at voltage index `j` of `cfg`.
    #[must_use]
    pub fn power(&self, cfg: &SystemConfig, voltage_idx: usize) -> f64 {
        let v = cfg.voltages.levels()[voltage_idx].volts();
        self.p_leak_nominal * v.powf(self.voltage_exponent)
    }
}

/// Energy of one thread including leakage, given the barrier time
/// `texec` it waits until (Eq 4.3 plus active and idle leakage).
///
/// # Panics
///
/// Panics (debug) if the thread finishes after `texec`; callers pin
/// `texec` to the critical thread's time, which bounds all others.
#[must_use]
pub fn thread_energy_with_leakage<M: ErrorModel>(
    cfg: &SystemConfig,
    profile: &ThreadProfile<M>,
    point: OperatingPoint,
    leak: &LeakageModel,
    texec: f64,
) -> f64 {
    let t_i = crate::model::thread_time(cfg, profile, point);
    debug_assert!(
        t_i <= texec * (1.0 + 1e-9) + 1e-9,
        "thread time {t_i} exceeds barrier time {texec}"
    );
    let dynamic = crate::model::thread_energy(cfg, profile, point);
    let p_leak = leak.power(cfg, point.voltage_idx);
    dynamic + p_leak * t_i + leak.idle_scale * p_leak * (texec - t_i).max(0.0)
}

/// Evaluates a complete assignment under the leakage-extended model:
/// total energy (dynamic + active leakage + idle leakage) and barrier
/// time (Eq 4.2, unchanged — leakage does not alter timing).
///
/// # Panics
///
/// Panics if `assignment` and `profiles` disagree on the thread count.
#[must_use]
pub fn evaluate_with_leakage<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    assignment: &Assignment,
    leak: &LeakageModel,
) -> EnergyDelay {
    assert_eq!(
        profiles.len(),
        assignment.len(),
        "assignment/profile thread counts differ"
    );
    let texec = profiles
        .iter()
        .zip(&assignment.points)
        .map(|(prof, &pt)| crate::model::thread_time(cfg, prof, pt))
        .fold(0.0f64, f64::max);
    let energy = profiles
        .iter()
        .zip(&assignment.points)
        .map(|(prof, &pt)| thread_energy_with_leakage(cfg, prof, pt, leak, texec))
        .sum();
    EnergyDelay::new(energy, texec)
}

/// The weighted SynTS-OPT objective under the leakage-extended model.
#[must_use]
pub fn weighted_cost_with_leakage<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    assignment: &Assignment,
    leak: &LeakageModel,
    theta: f64,
) -> f64 {
    let ed = evaluate_with_leakage(cfg, profiles, assignment, leak);
    ed.energy + theta * ed.time
}

/// Algorithm 1 generalized to the leakage-extended model; still exact.
///
/// For each candidate critical thread and operating point (pinning
/// `t_exec`), every other thread independently takes its cheapest point
/// under the *leakage-aware* energy — which, given `t_exec`, is a
/// function of its own point alone. The per-candidate decomposition is
/// therefore identical in structure to the original algorithm and the
/// optimality argument of Lemma 4.2.1 carries over unchanged.
///
/// Runtime: `O(M²Q²S²)`, as the original.
///
/// # Errors
///
/// * [`OptError::BadConfig`] for a malformed `cfg` or `leak`;
/// * [`OptError::NoThreads`] if `profiles` is empty.
pub fn synts_poly_leakage<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
    leak: &LeakageModel,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    leak.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let (q, s) = (cfg.q(), cfg.s());
    let m = profiles.len();
    // Per-thread per-point time, dynamic energy and leakage power.
    let mut time = vec![vec![0.0f64; q * s]; m];
    let mut dynamic = vec![vec![0.0f64; q * s]; m];
    let mut p_leak = vec![0.0f64; q];
    for (j, p) in p_leak.iter_mut().enumerate() {
        *p = leak.power(cfg, j);
    }
    for (i, prof) in profiles.iter().enumerate() {
        for j in 0..q {
            for k in 0..s {
                let pt = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                time[i][j * s + k] = crate::model::thread_time(cfg, prof, pt);
                dynamic[i][j * s + k] = crate::model::thread_energy(cfg, prof, pt);
            }
        }
    }
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Assignment> = None;
    let mut points = vec![
        OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 0
        };
        m
    ];
    for i in 0..m {
        for j in 0..q {
            for k in 0..s {
                let idx = j * s + k;
                let texec = time[i][idx];
                // Critical thread: runs the whole interval, no idle tail.
                let mut en = dynamic[i][idx] + p_leak[j] * texec;
                points[i] = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                let mut feasible = true;
                for l in 0..m {
                    if l == i {
                        continue;
                    }
                    // Leakage-aware minEnergy(l, texec).
                    let mut best_l: Option<(f64, OperatingPoint)> = None;
                    for jj in 0..q {
                        for kk in 0..s {
                            let li = jj * s + kk;
                            let t_l = time[l][li];
                            if t_l <= texec * (1.0 + 1e-12) + 1e-12 {
                                let e = dynamic[l][li]
                                    + p_leak[jj] * t_l
                                    + leak.idle_scale * p_leak[jj] * (texec - t_l).max(0.0);
                                if best_l.is_none_or(|(b, _)| e < b) {
                                    best_l = Some((
                                        e,
                                        OperatingPoint {
                                            voltage_idx: jj,
                                            tsr_idx: kk,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                    match best_l {
                        Some((e, p)) => {
                            en += e;
                            points[l] = p;
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                let cost = en + theta * texec;
                if cost < best_cost {
                    best_cost = cost;
                    best = Some(Assignment {
                        points: points.clone(),
                    });
                }
            }
        }
    }
    best.ok_or(OptError::Infeasible)
}

/// Exhaustive reference for the leakage-extended model (certification
/// only; same candidate cap as [`crate::synts_exhaustive`]).
///
/// # Errors
///
/// * [`OptError::TooLarge`] if `(Q·S)^M` exceeds the cap;
/// * [`OptError::BadConfig`] / [`OptError::NoThreads`] as elsewhere.
pub fn synts_exhaustive_leakage<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
    leak: &LeakageModel,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    leak.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let per_thread = (cfg.q() * cfg.s()) as u128;
    let m = profiles.len();
    let candidates = per_thread.checked_pow(m as u32).unwrap_or(u128::MAX);
    if candidates > EXHAUSTIVE_LIMIT {
        return Err(OptError::TooLarge {
            candidates,
            limit: EXHAUSTIVE_LIMIT,
        });
    }
    let s = cfg.s();
    let n_points = cfg.q() * s;
    let mut best_cost = f64::INFINITY;
    let mut best_combo = vec![0usize; m];
    let mut combo = vec![0usize; m];
    loop {
        let assignment = Assignment {
            points: combo
                .iter()
                .map(|&idx| OperatingPoint {
                    voltage_idx: idx / s,
                    tsr_idx: idx % s,
                })
                .collect(),
        };
        let cost = weighted_cost_with_leakage(cfg, profiles, &assignment, leak, theta);
        if cost < best_cost {
            best_cost = cost;
            best_combo.copy_from_slice(&combo);
        }
        let mut pos = 0;
        loop {
            if pos == m {
                let points = best_combo
                    .iter()
                    .map(|&idx| OperatingPoint {
                        voltage_idx: idx / s,
                        tsr_idx: idx % s,
                    })
                    .collect();
                return Ok(Assignment { points });
            }
            combo[pos] += 1;
            if combo[pos] < n_points {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{evaluate, weighted_cost};
    use crate::poly::synts_poly;
    use timing::ErrorCurve;

    fn curve(lo: f64, hi: f64) -> ErrorCurve {
        let delays: Vec<f64> = (0..200)
            .map(|i| lo + (hi - lo) * i as f64 / 200.0)
            .collect();
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_instance() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.82, 1.0];
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
            ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
            ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn zero_leakage_reduces_to_base_model() {
        let (cfg, profiles) = small_instance();
        let leak = LeakageModel::none();
        let a = synts_poly(&cfg, &profiles, 1.0).expect("poly");
        let base = evaluate(&cfg, &profiles, &a);
        let ext = evaluate_with_leakage(&cfg, &profiles, &a, &leak);
        assert!((base.energy - ext.energy).abs() < 1e-12 * base.energy.max(1.0));
        assert_eq!(base.time, ext.time);
        // And the leakage-aware solver returns an equally good assignment.
        let al = synts_poly_leakage(&cfg, &profiles, 1.0, &leak).expect("poly");
        let c0 = weighted_cost(&cfg, &profiles, &a, 1.0);
        let c1 = weighted_cost(&cfg, &profiles, &al, 1.0);
        assert!((c0 - c1).abs() <= 1e-9 * c0);
    }

    #[test]
    fn poly_matches_exhaustive_with_leakage() {
        let (cfg, profiles) = small_instance();
        for frac in [0.1, 0.3, 0.6] {
            let mut leak = LeakageModel::fraction_of_dynamic(&cfg, frac).expect("ok");
            for idle in [0.0, 0.5, 1.0] {
                leak.idle_scale = idle;
                for theta in [0.0, 0.5, 10.0] {
                    let poly = synts_poly_leakage(&cfg, &profiles, theta, &leak).expect("poly");
                    let ex = synts_exhaustive_leakage(&cfg, &profiles, theta, &leak)
                        .expect("exhaustive");
                    let cp = weighted_cost_with_leakage(&cfg, &profiles, &poly, &leak, theta);
                    let ce = weighted_cost_with_leakage(&cfg, &profiles, &ex, &leak, theta);
                    assert!(
                        (cp - ce).abs() <= 1e-9 * ce.abs().max(1.0),
                        "frac {frac} idle {idle} theta {theta}: poly {cp} vs exhaustive {ce}"
                    );
                }
            }
        }
    }

    #[test]
    fn energy_monotone_in_leakage_power() {
        let (cfg, profiles) = small_instance();
        let a = synts_poly(&cfg, &profiles, 1.0).expect("poly");
        let mut prev = evaluate(&cfg, &profiles, &a).energy;
        for frac in [0.1, 0.2, 0.4, 0.8] {
            let leak = LeakageModel::fraction_of_dynamic(&cfg, frac).expect("ok");
            let e = evaluate_with_leakage(&cfg, &profiles, &a, &leak).energy;
            assert!(e > prev, "more leakage must cost more: {e} vs {prev}");
            prev = e;
        }
    }

    #[test]
    fn idle_tail_is_charged() {
        // Two threads with very different finish times: idle_scale = 1
        // must cost strictly more than idle_scale = 0 at the same points.
        let (cfg, _) = small_instance();
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.0, curve(0.3, 0.6)),
            ThreadProfile::new(1_000.0, 1.0, curve(0.3, 0.6)),
        ];
        let a = Assignment::uniform(
            2,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 2,
            },
        );
        let mut leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        leak.idle_scale = 1.0;
        let with_idle = evaluate_with_leakage(&cfg, &profiles, &a, &leak).energy;
        leak.idle_scale = 0.0;
        let gated = evaluate_with_leakage(&cfg, &profiles, &a, &leak).energy;
        assert!(with_idle > gated);
    }

    #[test]
    fn leakage_shifts_voltage_choices_downward_or_equal() {
        // With heavy leakage (P ∝ V³), keeping non-critical threads at high
        // voltage is costlier; the optimizer should never pick *higher*
        // total voltage than the leakage-free optimum at equal theta.
        let (cfg, profiles) = small_instance();
        let theta = 0.01;
        let base = synts_poly(&cfg, &profiles, theta).expect("poly");
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.8).expect("ok");
        let heavy = synts_poly_leakage(&cfg, &profiles, theta, &leak).expect("poly");
        let volts = |a: &Assignment| -> f64 { a.points.iter().map(|p| p.voltage_idx as f64).sum() };
        // Higher voltage_idx = lower voltage in the table.
        assert!(volts(&heavy) >= volts(&base) - 1e-9);
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut leak = LeakageModel::none();
        leak.p_leak_nominal = -1.0;
        assert!(leak.validate().is_err());
        let mut leak = LeakageModel::none();
        leak.voltage_exponent = 9.0;
        assert!(leak.validate().is_err());
        let mut leak = LeakageModel::none();
        leak.idle_scale = 1.5;
        assert!(leak.validate().is_err());
        let cfg = SystemConfig::paper_default(10.0);
        assert!(LeakageModel::fraction_of_dynamic(&cfg, f64::NAN).is_err());
        assert!(LeakageModel::fraction_of_dynamic(&cfg, -0.1).is_err());
    }

    #[test]
    fn fraction_constructor_sets_stated_share() {
        let cfg = SystemConfig::paper_default(100.0);
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.25).expect("ok");
        // Reference dynamic power: α / t_nom at 1 V.
        let p_dyn = cfg.alpha / cfg.tnom_v1;
        assert!((leak.power(&cfg, 0) / p_dyn - 0.25).abs() < 1e-12);
        // At 0.72 V (index 4): V³ scaling.
        let v = cfg.voltages.levels()[4].volts();
        assert!((leak.power(&cfg, 4) / leak.power(&cfg, 0) - v.powi(3)).abs() < 1e-12);
    }
}
