//! The comparison schemes of the evaluation (Sec 6): Nominal, No-TS and
//! Per-core TS.

use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};
use crate::poly::{synts_poly, Tables};

/// Nominal V/F: every core at the highest voltage and `r = 1` — no scaling,
/// no speculation.
///
/// # Errors
///
/// [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input.
pub fn nominal<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    Ok(Assignment::uniform(
        profiles.len(),
        OperatingPoint {
            voltage_idx: 0,
            tsr_idx: cfg.s() - 1,
        },
    ))
}

/// Optimal per-thread V/F *without* timing speculation: the joint optimum of
/// Eq 4.4 restricted to `r = 1` — the paper's stand-in for conventional
/// barrier-aware DVFS (Liu et al. \[15\]).
///
/// # Errors
///
/// As for [`crate::synts_poly`].
pub fn no_ts<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    let mut restricted = cfg.clone();
    restricted.tsr_levels = vec![1.0];
    let a = synts_poly(&restricted, profiles, theta)?;
    // Map TSR index 0 of the restricted problem back to r = 1 in `cfg`.
    Ok(Assignment {
        points: a
            .points
            .into_iter()
            .map(|p| OperatingPoint {
                voltage_idx: p.voltage_idx,
                tsr_idx: cfg.s() - 1,
            })
            .collect(),
    })
}

/// Per-core timing speculation: each core independently minimizes its own
/// `en_i + θ·t_i` over all `(V, r)` — the best any single-core TS scheme
/// (Razor with oracle error curves) could do, ignoring barrier coupling.
///
/// # Errors
///
/// [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input.
pub fn per_core_ts<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let t = Tables::build(cfg, profiles);
    let s = cfg.s();
    let points = (0..t.m)
        .map(|i| {
            let mut best = (f64::INFINITY, 0usize);
            for idx in 0..cfg.q() * s {
                let cost = t.energy[i][idx] + theta * t.time[i][idx];
                if cost < best.0 {
                    best = (cost, idx);
                }
            }
            OperatingPoint {
                voltage_idx: best.1 / s,
                tsr_idx: best.1 % s,
            }
        })
        .collect();
    Ok(Assignment { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{evaluate, weighted_cost};
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn heterogeneous() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let cfg = SystemConfig::paper_default(10.0);
        let hot: Vec<f64> = (0..300).map(|i| 0.72 + 0.28 * (i as f64 / 300.0)).collect();
        let cool: Vec<f64> = (0..300).map(|i| 0.35 + 0.30 * (i as f64 / 300.0)).collect();
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.0, curve(hot)),
            ThreadProfile::new(10_000.0, 1.0, curve(cool.clone())),
            ThreadProfile::new(10_000.0, 1.0, curve(cool.clone())),
            ThreadProfile::new(10_000.0, 1.0, curve(cool)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn nominal_is_top_voltage_no_speculation() {
        let (cfg, profiles) = heterogeneous();
        let a = nominal(&cfg, &profiles).expect("ok");
        for p in &a.points {
            assert_eq!(p.voltage_idx, 0);
            assert_eq!(p.tsr_idx, cfg.s() - 1);
        }
    }

    #[test]
    fn no_ts_never_speculates() {
        let (cfg, profiles) = heterogeneous();
        let a = no_ts(&cfg, &profiles, 1.0).expect("ok");
        for p in &a.points {
            assert_eq!(cfg.tsr_levels[p.tsr_idx], 1.0);
        }
    }

    #[test]
    fn synts_cost_never_worse_than_any_baseline() {
        // SynTS optimizes Eq 4.4 exactly, so its weighted cost lower-bounds
        // every other scheme at the same theta.
        let (cfg, profiles) = heterogeneous();
        let theta = {
            // Equal-weight theta: nominal energy / nominal time.
            let a = nominal(&cfg, &profiles).expect("ok");
            let ed = evaluate(&cfg, &profiles, &a);
            ed.energy / ed.time
        };
        let synts = synts_poly(&cfg, &profiles, theta).expect("ok");
        let c_synts = weighted_cost(&cfg, &profiles, &synts, theta);
        for (name, a) in [
            ("nominal", nominal(&cfg, &profiles).expect("ok")),
            ("no_ts", no_ts(&cfg, &profiles, theta).expect("ok")),
            ("per_core", per_core_ts(&cfg, &profiles, theta).expect("ok")),
        ] {
            let c = weighted_cost(&cfg, &profiles, &a, theta);
            assert!(
                c_synts <= c + 1e-9 * c.abs().max(1.0),
                "{name}: SynTS {c_synts} should not exceed {c}"
            );
        }
    }

    #[test]
    fn per_core_overspeculates_non_critical_threads() {
        // The paper's core observation: per-core TS pushes every thread to
        // its own optimum, so non-critical threads burn energy racing to a
        // barrier they'll wait at; SynTS instead slows them down. At an
        // equal-weight theta, SynTS must strictly beat per-core on Eq 4.4
        // for a heterogeneous workload.
        let (cfg, profiles) = heterogeneous();
        let a_nom = nominal(&cfg, &profiles).expect("ok");
        let ed_nom = evaluate(&cfg, &profiles, &a_nom);
        let theta = ed_nom.energy / ed_nom.time;
        let synts = synts_poly(&cfg, &profiles, theta).expect("ok");
        let percore = per_core_ts(&cfg, &profiles, theta).expect("ok");
        let c_synts = weighted_cost(&cfg, &profiles, &synts, theta);
        let c_percore = weighted_cost(&cfg, &profiles, &percore, theta);
        assert!(
            c_synts < c_percore * (1.0 - 1e-6),
            "heterogeneity must give SynTS strict advantage: {c_synts} vs {c_percore}"
        );
    }

    #[test]
    fn schemes_agree_on_fully_homogeneous_single_thread() {
        // With one thread, per-core TS and SynTS coincide by construction.
        let cfg = SystemConfig::paper_default(10.0);
        let profiles = vec![ThreadProfile::new(
            1_000.0,
            1.0,
            curve((0..100).map(|i| 0.4 + 0.5 * (i as f64 / 100.0)).collect()),
        )];
        let theta = 0.5;
        let a = per_core_ts(&cfg, &profiles, theta).expect("ok");
        let b = synts_poly(&cfg, &profiles, theta).expect("ok");
        let ca = weighted_cost(&cfg, &profiles, &a, theta);
        let cb = weighted_cost(&cfg, &profiles, &b, theta);
        assert!((ca - cb).abs() < 1e-9 * ca.max(1.0));
    }
}
