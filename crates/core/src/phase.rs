//! Per-phase wall-clock breakdown of the characterization pipeline.
//!
//! The PR 5 bench recorded ~1× parallel "speedup" for the pooled corpus
//! build, and nothing in the code said where the time went. This module is
//! the instrument that settles such questions with data instead of
//! guesses: every phase of a corpus build — workload trace generation,
//! stage construction + STA, the gate-sim inner loop, cache probe and
//! store I/O, and final result collection — accumulates its wall-clock
//! into a process-wide atomic counter, and CLIs surface the breakdown
//! next to the timing numbers (`synts-cli bench` writes it into
//! `BENCH_PR7.json`).
//!
//! The counters follow the same monotonic snapshot/delta pattern as
//! [`crate::cache::CacheStats`]: take a [`PhaseStats::snapshot`] before a
//! region, another after, and [`PhaseStats::since`] is what that region
//! spent per phase. Timing costs two `Instant::now` calls per phase
//! region — phases wrap entire traces/intervals, not per-vector work, so
//! the overhead is unmeasurable next to what they time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented phases of a characterization build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Running an instrumented workload kernel to produce its trace.
    TraceBuild,
    /// Building a stage netlist and running STA on it.
    StageBuild,
    /// The gate-level timing simulation inner loop.
    GateSim,
    /// Probing the on-disk characterization cache (key + read + parse).
    CacheLookup,
    /// Serializing and persisting a computed entry.
    CacheStore,
    /// Assembling per-task results into corpus/benchmark data.
    Collect,
}

static TRACE_BUILD_NS: AtomicU64 = AtomicU64::new(0);
static STAGE_BUILD_NS: AtomicU64 = AtomicU64::new(0);
static GATE_SIM_NS: AtomicU64 = AtomicU64::new(0);
static CACHE_LOOKUP_NS: AtomicU64 = AtomicU64::new(0);
static CACHE_STORE_NS: AtomicU64 = AtomicU64::new(0);
static COLLECT_NS: AtomicU64 = AtomicU64::new(0);

fn counter(phase: Phase) -> &'static AtomicU64 {
    match phase {
        Phase::TraceBuild => &TRACE_BUILD_NS,
        Phase::StageBuild => &STAGE_BUILD_NS,
        Phase::GateSim => &GATE_SIM_NS,
        Phase::CacheLookup => &CACHE_LOOKUP_NS,
        Phase::CacheStore => &CACHE_STORE_NS,
        Phase::Collect => &COLLECT_NS,
    }
}

/// Times `f` and charges its wall-clock to `phase`.
///
/// Phase time is summed across workers, so on an N-worker pool a phase
/// can accumulate up to N seconds per wall-clock second — the breakdown
/// answers "where did the CPU time go", and comparing a phase's total
/// against `workers × elapsed` shows how well that phase actually
/// parallelized.
pub fn time_phase<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    counter(phase).fetch_add(ns, Ordering::Relaxed);
    result
}

/// Process-wide per-phase wall-clock totals, in nanoseconds (monotonic
/// snapshots; see the [module docs](self) for the snapshot/delta idiom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Workload kernel runs.
    pub trace_build_ns: u64,
    /// Stage netlist construction + STA.
    pub stage_build_ns: u64,
    /// Gate-level timing simulation.
    pub gate_sim_ns: u64,
    /// Cache probes (key construction, read, parse, verify).
    pub cache_lookup_ns: u64,
    /// Cache entry serialization and writes.
    pub cache_store_ns: u64,
    /// Result assembly/collection.
    pub collect_ns: u64,
}

impl PhaseStats {
    /// The counters as of now.
    #[must_use]
    pub fn snapshot() -> PhaseStats {
        PhaseStats {
            trace_build_ns: TRACE_BUILD_NS.load(Ordering::Relaxed),
            stage_build_ns: STAGE_BUILD_NS.load(Ordering::Relaxed),
            gate_sim_ns: GATE_SIM_NS.load(Ordering::Relaxed),
            cache_lookup_ns: CACHE_LOOKUP_NS.load(Ordering::Relaxed),
            cache_store_ns: CACHE_STORE_NS.load(Ordering::Relaxed),
            collect_ns: COLLECT_NS.load(Ordering::Relaxed),
        }
    }

    /// The counters accumulated since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: PhaseStats) -> PhaseStats {
        PhaseStats {
            trace_build_ns: self.trace_build_ns.saturating_sub(earlier.trace_build_ns),
            stage_build_ns: self.stage_build_ns.saturating_sub(earlier.stage_build_ns),
            gate_sim_ns: self.gate_sim_ns.saturating_sub(earlier.gate_sim_ns),
            cache_lookup_ns: self.cache_lookup_ns.saturating_sub(earlier.cache_lookup_ns),
            cache_store_ns: self.cache_store_ns.saturating_sub(earlier.cache_store_ns),
            collect_ns: self.collect_ns.saturating_sub(earlier.collect_ns),
        }
    }

    /// Sum over all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.trace_build_ns
            + self.stage_build_ns
            + self.gate_sim_ns
            + self.cache_lookup_ns
            + self.cache_store_ns
            + self.collect_ns
    }

    /// `(name, nanoseconds)` rows in a stable reporting order.
    #[must_use]
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("trace_build", self.trace_build_ns),
            ("stage_build", self.stage_build_ns),
            ("gate_sim", self.gate_sim_ns),
            ("cache_lookup", self.cache_lookup_ns),
            ("cache_store", self.cache_store_ns),
            ("collect", self.collect_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_phase_accumulates_and_since_subtracts() {
        let before = PhaseStats::snapshot();
        let v = time_phase(Phase::GateSim, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        time_phase(Phase::TraceBuild, || ());
        let delta = PhaseStats::snapshot().since(before);
        assert!(
            delta.gate_sim_ns >= 2_000_000,
            "slept 2ms, got {}ns",
            delta.gate_sim_ns
        );
        assert_eq!(delta.cache_store_ns, 0, "untouched phase stays zero");
        assert_eq!(
            delta.total_ns(),
            delta.rows().iter().map(|(_, ns)| ns).sum::<u64>()
        );
    }
}
