//! Persistent, content-addressed characterization cache.
//!
//! Gate-level characterization (Fig 5.8's trace → delay-trace →
//! error-curve pipeline) dominates the wall-clock of every end-to-end run,
//! yet its output is a pure function of the workload trace, the stage, the
//! harness knobs and the cell library. This module memoizes that function
//! on disk so the cost is paid **once per machine**, not once per process:
//!
//! * entries are *content-addressed*: the file name is a stable 64-bit
//!   FNV-1a hash of the full characterization key — workload-trace
//!   fingerprint, stage kind and datapath width, every [`HarnessConfig`]
//!   knob, and a fingerprint of the cell library's delays/energies — so a
//!   change to any input simply misses and recomputes;
//! * payloads are serialized through the deterministic
//!   [`crate::scenario::Json`] tree (shortest-round-trip floats), so a
//!   cached [`BenchmarkData`] is **bit-identical** to a freshly computed
//!   one — golden fixtures cannot tell the difference;
//! * the store is crash- and corruption-safe: writes go through a
//!   temp-file + rename, and any unreadable, truncated, version- or
//!   key-mismatched entry falls back to recomputation (never an error);
//! * hits and misses are counted process-wide ([`CacheStats`]) so CLIs
//!   and report sinks can surface what the cache did.
//!
//! The store lives at [`CACHE_DIR_ENV`] (`SYNTS_CACHE_DIR`), defaulting
//! to `target/synts-cache/`. Disable it with [`CharCache::disabled`] (the
//! `synts-cli --no-cache` flag).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use circuits::StageKind;
use workloads::{Benchmark, WorkloadTrace};

use crate::error::OptError;
use crate::experiments::{
    characterize_workload_on, characterize_workload_pooled, BenchmarkData, HarnessConfig,
    IntervalData, ThreadData,
};
use crate::faults::{site, FaultPlan};
use crate::parallel::ThreadPool;
use crate::scenario::Json;
use timing::{ErrorCurve, StageCharacterizer, TimingError};

/// Environment variable naming the on-disk cache directory.
pub const CACHE_DIR_ENV: &str = "SYNTS_CACHE_DIR";

/// Default cache directory, relative to the working directory.
pub const CACHE_DIR_DEFAULT: &str = "target/synts-cache";

/// Bump when the entry format or the characterization pipeline changes
/// in a result-affecting way: old entries then miss instead of lying.
const CACHE_FORMAT_VERSION: f64 = 1.0;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static WRITE_ERRORS: AtomicU64 = AtomicU64::new(0);
static REMOTE_HITS: AtomicU64 = AtomicU64::new(0);
static COALESCED: AtomicU64 = AtomicU64::new(0);

/// Process-wide cache hit/miss counters (monotonic snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Characterizations served from local disk.
    pub hits: u64,
    /// Characterizations recomputed (and stored).
    pub misses: u64,
    /// Store attempts that failed to land (mkdir/write/rename errors,
    /// including injected ones). The run is unaffected — the entry just
    /// stays cold — but silent drops would mask a broken cache volume.
    pub write_errors: u64,
    /// Characterizations served by the remote tier after a local miss
    /// (the entry is then replicated locally).
    pub remote_hits: u64,
    /// Lookups that blocked on another thread's in-flight
    /// characterization of the same key instead of recomputing.
    pub coalesced: u64,
}

impl CacheStats {
    /// The counters as of now.
    #[must_use]
    pub fn snapshot() -> CacheStats {
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            write_errors: WRITE_ERRORS.load(Ordering::Relaxed),
            remote_hits: REMOTE_HITS.load(Ordering::Relaxed),
            coalesced: COALESCED.load(Ordering::Relaxed),
        }
    }

    /// Hits (local + remote) + misses.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.remote_hits + self.misses
    }

    /// The counters accumulated since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            write_errors: self.write_errors.saturating_sub(earlier.write_errors),
            remote_hits: self.remote_hits.saturating_sub(earlier.remote_hits),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
        }
    }
}

/// Outcome of probing a remote characterization tier.
#[derive(Debug)]
pub enum RemoteFetch {
    /// The tier holds the entry: the full entry text (`{"key":…,"data":…}`,
    /// same format as the on-disk file). It is verified against the local
    /// key before use, so a lying tier degrades to a miss.
    Hit(String),
    /// The tier does not hold the entry (or is down, or told this caller
    /// it holds the characterization claim): compute locally.
    Compute,
}

/// A shared characterization tier behind the local directory — in the
/// fleet, the coordinator's `GET/PUT /v1/cache/<name>` endpoints. Entries
/// are immutable and content-addressed by file name, so replication is
/// trivially coherent: any byte-for-byte copy is as good as the original.
///
/// Implementations must be cheap to call on the miss path and must never
/// panic; a flaky tier should return [`RemoteFetch::Compute`] / `false`
/// rather than block indefinitely.
pub trait RemoteCacheTier: Send + Sync + std::fmt::Debug {
    /// Looks up an entry by file name (`<hash>.json`).
    fn fetch(&self, name: &str) -> RemoteFetch;
    /// Publishes a freshly computed entry. Returns `false` when the
    /// publish was dropped (counted as a write error; the run proceeds).
    fn publish(&self, name: &str, entry: &str) -> bool;
}

/// Configuration of the on-disk characterization cache.
#[derive(Debug, Clone)]
pub struct CharCache {
    enabled: bool,
    dir: PathBuf,
    faults: Option<Arc<FaultPlan>>,
    remote: Option<Arc<dyn RemoteCacheTier>>,
}

impl PartialEq for CharCache {
    fn eq(&self, other: &Self) -> bool {
        // The remote tier compares by identity: two caches pointing at
        // the same tier instance are the same cache; tiers have no
        // value semantics of their own.
        self.enabled == other.enabled
            && self.dir == other.dir
            && self.faults == other.faults
            && match (&self.remote, &other.remote) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for CharCache {}

impl CharCache {
    /// The environment-resolved cache: enabled, rooted at
    /// [`CACHE_DIR_ENV`] or [`CACHE_DIR_DEFAULT`].
    #[must_use]
    pub fn from_env() -> CharCache {
        // synts-lint: allow(env-read) — SYNTS_CACHE_DIR only moves where cache files live, never what they contain
        let dir = std::env::var(CACHE_DIR_ENV)
            .ok()
            .filter(|s| !s.trim().is_empty())
            .map_or_else(|| PathBuf::from(CACHE_DIR_DEFAULT), PathBuf::from);
        CharCache {
            enabled: true,
            dir,
            faults: None,
            remote: None,
        }
    }

    /// An enabled cache rooted at an explicit directory.
    #[must_use]
    pub fn at_dir(dir: impl Into<PathBuf>) -> CharCache {
        CharCache {
            enabled: true,
            dir: dir.into(),
            faults: None,
            remote: None,
        }
    }

    /// A cache that never reads or writes disk — every characterization
    /// recomputes (and the hit/miss counters are untouched).
    #[must_use]
    pub fn disabled() -> CharCache {
        CharCache {
            enabled: false,
            dir: PathBuf::new(),
            faults: None,
            remote: None,
        }
    }

    /// Whether lookups touch disk at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms (or disarms, with `None`) deterministic fault injection on
    /// this cache's read/write/rename paths. The plan is shared, so fired
    /// counts aggregate across clones handed to worker threads.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> CharCache {
        self.faults = faults;
        self
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Attaches (or detaches, with `None`) a remote tier consulted after
    /// a local miss and published to after a local store. The local
    /// directory stays authoritative for this process; the tier only
    /// spares recomputation across machines.
    #[must_use]
    pub fn with_remote(mut self, remote: Option<Arc<dyn RemoteCacheTier>>) -> CharCache {
        self.remote = remote;
        self
    }

    /// The attached remote tier, if any.
    #[must_use]
    pub fn remote(&self) -> Option<&Arc<dyn RemoteCacheTier>> {
        self.remote.as_ref()
    }

    fn entry_path(&self, key_hash: u64) -> PathBuf {
        self.dir.join(format!("{key_hash:016x}.json"))
    }

    /// Resolves the cache slot for one characterization — the key and
    /// on-disk path are fixed here; [`CacheEntry::load`] and
    /// [`CacheEntry::store`] then move data through it. This is the
    /// split-phase form of [`characterize_workload_cached`] for callers
    /// (like the corpus build) that probe many entries up front and
    /// compute the misses on their own schedule.
    #[must_use]
    pub fn entry(
        &self,
        trace: &WorkloadTrace,
        stage: StageKind,
        cfg: &HarnessConfig,
        netlist: &gatelib::Netlist,
    ) -> CacheEntry {
        if !self.enabled {
            return CacheEntry {
                slot: None,
                faults: None,
                remote: None,
            };
        }
        // Key construction hashes the full trace; charge it to the
        // lookup phase so the breakdown shows the probe's true cost.
        crate::phase::time_phase(crate::phase::Phase::CacheLookup, || {
            let key = cache_key(trace, stage, cfg, netlist);
            let mut h = Fnv::new();
            h.write_str(&key.render());
            CacheEntry {
                slot: Some((self.entry_path(h.finish()), key)),
                faults: self.faults.clone(),
                remote: self.remote.clone(),
            }
        })
    }
}

/// One resolved characterization-cache slot (see [`CharCache::entry`]).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// `(path, full key)`; `None` for a disabled cache, which never
    /// touches disk or the hit/miss counters.
    slot: Option<(PathBuf, Json)>,
    /// Fault plan inherited from the owning [`CharCache`].
    faults: Option<Arc<FaultPlan>>,
    /// Remote tier inherited from the owning [`CharCache`].
    remote: Option<Arc<dyn RemoteCacheTier>>,
}

impl CacheEntry {
    /// The entry's identity token (its file name) — the coalescing and
    /// remote-tier key. `None` for a disabled cache.
    #[must_use]
    pub fn token(&self) -> Option<String> {
        self.slot.as_ref().map(|(path, _)| entry_token(path))
    }

    /// Probes the slot: a verified local entry counts a hit; on a local
    /// miss the remote tier (if any) is consulted, and a verified remote
    /// entry counts a `remote_hit` and is replicated into the local
    /// directory. Anything else (absent, corrupt, key-mismatched, or a
    /// disabled cache) is a miss. The disabled cache skips the counters,
    /// like [`characterize_workload_cached`] always has.
    #[must_use]
    pub fn load(&self) -> Option<BenchmarkData> {
        let (path, key) = self.slot.as_ref()?;
        let token = entry_token(path);
        if let Some(plan) = &self.faults {
            // An injected read fault turns this probe into a miss — the
            // exact behaviour of a corrupt or torn entry on disk.
            if plan.should(site::CACHE_READ, &token) {
                MISSES.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        if let Some(data) =
            crate::phase::time_phase(crate::phase::Phase::CacheLookup, || load_entry(path, key))
        {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Some(data);
        }
        if let Some(remote) = &self.remote {
            // An injected cache.remote fault models an unreachable tier:
            // the lookup degrades to an ordinary local miss.
            let blocked = self
                .faults
                .as_ref()
                .is_some_and(|plan| plan.should(site::CACHE_REMOTE, &token));
            if !blocked {
                if let RemoteFetch::Hit(text) = remote.fetch(&token) {
                    if let Some(data) =
                        crate::phase::time_phase(crate::phase::Phase::CacheLookup, || {
                            parse_entry(&text, key)
                        })
                    {
                        REMOTE_HITS.fetch_add(1, Ordering::Relaxed);
                        // Replicate locally (best-effort) so the next
                        // probe on this machine is a plain local hit.
                        if write_local_copy(path, &text).is_err() {
                            WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(data);
                    }
                }
            }
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Persists freshly computed data into the slot (best-effort, like
    /// every cache write: I/O failure only costs a future recompute) and
    /// publishes it to the remote tier, if one is attached.
    pub fn store(&self, data: &BenchmarkData) {
        if let Some((path, key)) = &self.slot {
            crate::phase::time_phase(crate::phase::Phase::CacheStore, || {
                let text = Json::obj()
                    .field("key", key.clone())
                    .field("data", benchmark_data_to_json(data))
                    .render_pretty();
                store_entry(path, &text, self.faults.as_deref());
                if let Some(remote) = &self.remote {
                    let token = entry_token(path);
                    let blocked = self
                        .faults
                        .as_ref()
                        .is_some_and(|plan| plan.should(site::CACHE_REMOTE, &token));
                    if !blocked && !remote.publish(&token, &text) {
                        WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    }
}

impl Default for CharCache {
    fn default() -> CharCache {
        CharCache::from_env()
    }
}

/// 64-bit FNV-1a — tiny, stable across platforms and Rust versions
/// (unlike `DefaultHasher`), and collisions are additionally guarded by
/// storing and comparing the full key in every entry.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.as_bytes() {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of everything the characterized circuit contributes: the
/// full netlist structure (cell kinds, connectivity, primary I/O order)
/// plus per-cell nominal delays and switch energies. A cell-library
/// retune *or* a stage rewiring changes this and invalidates exactly
/// the affected entries.
fn library_fingerprint(netlist: &gatelib::Netlist) -> u64 {
    let mut h = Fnv::new();
    h.write_str(gatelib::CELL_LIBRARY_NAME);
    h.write_u64(netlist.cell_count() as u64);
    h.write_u64(netlist.net_count() as u64);
    h.write_u64(netlist.primary_inputs().len() as u64);
    for pi in netlist.primary_inputs() {
        h.write_u64(pi.index() as u64);
    }
    h.write_u64(netlist.primary_outputs().len() as u64);
    for po in netlist.primary_outputs() {
        h.write_u64(po.index() as u64);
    }
    for (cell, &delay) in netlist.cells().iter().zip(netlist.cell_delays_v1()) {
        h.write_u64(cell.kind() as u64);
        h.write_u64(cell.inputs().len() as u64);
        for n in cell.inputs() {
            h.write_u64(n.index() as u64);
        }
        h.write_u64(cell.output().index() as u64);
        h.write_f64(delay);
        h.write_f64(cell.kind().params().switch_energy);
    }
    h.finish()
}

/// Fingerprint of the full workload trace: every event, memory
/// reference and branch count of every thread in every interval.
fn trace_fingerprint(trace: &WorkloadTrace) -> u64 {
    let mut h = Fnv::new();
    h.write_str(trace.benchmark.name());
    h.write_u64(trace.intervals.len() as u64);
    for interval in &trace.intervals {
        h.write_u64(interval.threads() as u64);
        for work in interval {
            h.write_u64(work.events.len() as u64);
            for ev in &work.events {
                h.write_u64(ev.op.index() as u64);
                h.write_u64(ev.a);
                h.write_u64(ev.b);
            }
            h.write_u64(work.mem_refs.len() as u64);
            for m in &work.mem_refs {
                h.write_u64(m.addr);
                h.write_u64(u64::from(m.is_store));
            }
            h.write_u64(work.branches);
        }
    }
    h.finish()
}

/// The full characterization key as a JSON object — stored inside every
/// entry and compared verbatim on load, so a 64-bit hash collision can
/// never alias two different characterizations.
fn cache_key(
    trace: &WorkloadTrace,
    stage: StageKind,
    cfg: &HarnessConfig,
    netlist: &gatelib::Netlist,
) -> Json {
    let w = &cfg.workload;
    let cpi = &cfg.cpi_model;
    Json::obj()
        .field("version", Json::num(CACHE_FORMAT_VERSION))
        .field("benchmark", Json::str(trace.benchmark.name()))
        .field("stage", Json::str(stage.name()))
        .field(
            "workload",
            Json::obj()
                .field("threads", Json::num(w.threads as f64))
                .field("scale", Json::num(w.scale as f64))
                .field("intervals", Json::num(w.intervals as f64))
                .field("width", Json::num(w.width as f64))
                .field("seed", Json::num(w.seed as f64)),
        )
        .field("max_samples", Json::num(cfg.max_samples as f64))
        .field(
            "cpi",
            Json::obj()
                .field("sets", Json::num(cpi.cache.sets as f64))
                .field("ways", Json::num(cpi.cache.ways as f64))
                .field("line_bytes", Json::num(cpi.cache.line_bytes as f64))
                .field("miss_penalty", Json::num(cpi.cache.miss_penalty as f64))
                .field("mul_extra", Json::num(cpi.mul_extra as f64))
                .field("taken_rate", Json::num(cpi.taken_rate))
                .field("redirect_penalty", Json::num(cpi.redirect_penalty as f64)),
        )
        .field(
            "library",
            Json::str(format!("{:016x}", library_fingerprint(netlist))),
        )
        .field(
            "trace",
            Json::str(format!("{:016x}", trace_fingerprint(trace))),
        )
}

/// Serializes a [`BenchmarkData`] to the cache payload tree.
///
/// Error curves are *not* stored: they are rebuilt from the normalized
/// delays on load ([`ErrorCurve::from_normalized_delays`] sorts the same
/// multiset [`ErrorCurve::from_trace`] sorts), which keeps the entry
/// small and the round-trip exact.
#[must_use]
pub fn benchmark_data_to_json(data: &BenchmarkData) -> Json {
    Json::obj()
        .field("benchmark", Json::str(data.benchmark.name()))
        .field("stage", Json::str(data.stage.name()))
        .field("tnom_v1", Json::num(data.tnom_v1))
        .field(
            "intervals",
            Json::Arr(
                data.intervals
                    .iter()
                    .map(|iv| {
                        Json::obj().field(
                            "threads",
                            Json::Arr(
                                iv.threads
                                    .iter()
                                    .map(|t| {
                                        Json::obj()
                                            .field(
                                                "normalized_delays",
                                                Json::Arr(
                                                    t.normalized_delays
                                                        .iter()
                                                        .map(|&d| Json::num(d))
                                                        .collect(),
                                                ),
                                            )
                                            .field("instructions", Json::num(t.instructions))
                                            .field("cpi_base", Json::num(t.cpi_base))
                                    })
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        )
}

/// Rebuilds a [`BenchmarkData`] from a cache payload tree.
///
/// # Errors
///
/// [`OptError::Spec`] on any structural mismatch (the caller treats this
/// as a cache miss).
pub fn benchmark_data_from_json(json: &Json) -> Result<BenchmarkData, OptError> {
    let bad = |msg: &str| OptError::Spec(format!("cache entry: {msg}"));
    let benchmark = json
        .get("benchmark")
        .and_then(Json::as_str)
        .and_then(Benchmark::from_name)
        .ok_or_else(|| bad("bad 'benchmark'"))?;
    let stage = json
        .get("stage")
        .and_then(Json::as_str)
        .and_then(StageKind::from_name)
        .ok_or_else(|| bad("bad 'stage'"))?;
    let tnom_v1 = json
        .get("tnom_v1")
        .and_then(Json::as_f64)
        .filter(|t| *t > 0.0)
        .ok_or_else(|| bad("bad 'tnom_v1'"))?;
    let intervals = json
        .get("intervals")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing 'intervals'"))?
        .iter()
        .map(|iv| {
            let threads = iv
                .get("threads")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing 'threads'"))?
                .iter()
                .map(|t| {
                    let normalized_delays = t
                        .get("normalized_delays")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| bad("missing 'normalized_delays'"))?
                        .iter()
                        .map(|d| {
                            d.as_f64()
                                .filter(|x| x.is_finite())
                                .ok_or_else(|| bad("non-finite delay"))
                        })
                        .collect::<Result<Vec<f64>, OptError>>()?;
                    let instructions = t
                        .get("instructions")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("missing 'instructions'"))?;
                    let cpi_base = t
                        .get("cpi_base")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("missing 'cpi_base'"))?;
                    // Mirror `characterize_thread`: a stage-idle thread carries an
                    // empty trace and the zero-delay activity curve.
                    let curve = if normalized_delays.is_empty() {
                        ErrorCurve::from_normalized_delays(vec![0.0])?
                    } else {
                        ErrorCurve::from_normalized_delays(normalized_delays.clone())?
                    };
                    Ok(ThreadData {
                        curve,
                        normalized_delays,
                        instructions,
                        cpi_base,
                    })
                })
                .collect::<Result<Vec<ThreadData>, OptError>>()?;
            Ok(IntervalData { threads })
        })
        .collect::<Result<Vec<IntervalData>, OptError>>()?;
    Ok(BenchmarkData {
        benchmark,
        stage,
        tnom_v1,
        intervals,
    })
}

fn load_entry(path: &Path, key: &Json) -> Option<BenchmarkData> {
    parse_entry(&std::fs::read_to_string(path).ok()?, key)
}

/// Parses and verifies one entry text (local file or remote payload).
/// Full-key comparison: version drift, hash collisions, truncated
/// rewrites and lying remote tiers all land here and read as a miss.
fn parse_entry(src: &str, key: &Json) -> Option<BenchmarkData> {
    let entry = Json::parse(src).ok()?;
    if entry.get("key")?.render() != key.render() {
        return None;
    }
    benchmark_data_from_json(entry.get("data")?).ok()
}

/// Replicates a verified remote entry into the local directory (atomic
/// tmp → rename, like any store; failures only cost a future re-fetch).
fn write_local_copy(path: &Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().ok_or(std::io::ErrorKind::InvalidInput)?;
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Stable identity token for one cache slot — the entry file name —
/// used both for fault-plan decisions and nothing else.
fn entry_token(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn store_entry(path: &Path, text: &str, faults: Option<&FaultPlan>) {
    // Best-effort: a read-only or full disk must never fail the run —
    // but every store that fails to land is counted (write_errors).
    let token = entry_token(path);
    if let Some(plan) = faults {
        if plan.should(site::CACHE_WRITE, &token) {
            WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    let Some(dir) = path.parent() else {
        WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, text).is_err() {
        WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if let Some(plan) = faults {
        if plan.should(site::CACHE_RENAME, &token) {
            // The tmp file was written but the publish step "fails":
            // clean up like a crashed renamer would not have.
            let _ = std::fs::remove_file(&tmp);
            WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    // Atomic within one filesystem: concurrent writers of the same
    // entry race benignly (identical content).
    if std::fs::rename(&tmp, path).is_err() {
        WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide per-key in-flight table behind cache coalescing:
/// concurrent misses on the same entry block on one characterization
/// instead of N identical gate simulations. Keys are entry file names —
/// the same content-addressed identity the disk and remote tiers use.
struct Coalescer {
    inflight: std::sync::Mutex<std::collections::BTreeSet<String>>,
    cv: std::sync::Condvar,
}

static COALESCER: std::sync::OnceLock<Coalescer> = std::sync::OnceLock::new();

fn coalescer() -> &'static Coalescer {
    COALESCER.get_or_init(|| Coalescer {
        inflight: std::sync::Mutex::new(std::collections::BTreeSet::new()),
        cv: std::sync::Condvar::new(),
    })
}

/// Outcome of asking the coalescer for a key.
enum Admission {
    /// This thread owns the key until the guard drops: probe, compute
    /// on a miss, store.
    Leader(CoalesceGuard),
    /// Another thread was characterizing this key; it has now finished
    /// (successfully or not) — re-probe the cache.
    Waited,
}

/// Ownership of one in-flight key; dropping it (normally or by unwind)
/// releases the key and wakes every waiter.
struct CoalesceGuard {
    token: String,
}

impl Drop for CoalesceGuard {
    fn drop(&mut self) {
        let c = coalescer();
        let mut inflight = c
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inflight.remove(&self.token);
        c.cv.notify_all();
    }
}

fn admit(token: &str) -> Admission {
    let c = coalescer();
    let mut inflight = c
        .inflight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if inflight.insert(token.to_string()) {
        return Admission::Leader(CoalesceGuard {
            token: token.to_string(),
        });
    }
    COALESCED.fetch_add(1, Ordering::Relaxed);
    while inflight.contains(token) {
        inflight =
            c.cv.wait(inflight)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    Admission::Waited
}

/// Characterizes a workload trace on one stage through the cache: a warm
/// entry skips gate simulation entirely; a miss recomputes on `pool`
/// and persists the result. Concurrent misses on the same key coalesce:
/// one thread characterizes while the rest block and then read the
/// stored entry ([`CacheStats::coalesced`] counts the waits).
///
/// # Errors
///
/// Propagates characterization failures; cache I/O failures are
/// swallowed (they only cost a recompute).
pub fn characterize_workload_cached(
    trace: &WorkloadTrace,
    stage: StageKind,
    cfg: &HarnessConfig,
    cache: &CharCache,
    pool: ThreadPool,
) -> Result<BenchmarkData, OptError> {
    use crate::phase::{time_phase, Phase};
    if !cache.enabled {
        return characterize_workload_pooled(trace, stage, cfg, pool);
    }
    // Build the stage once: its netlist feeds the key's library
    // fingerprint, and on a miss the same instance is characterized
    // (no STA runs on the hit path).
    let circuit = time_phase(Phase::StageBuild, || {
        circuits::build_stage(stage, cfg.workload.width)
    })
    .map_err(TimingError::from)?;
    let entry = cache.entry(trace, stage, cfg, circuit.netlist());
    let token = entry.token().unwrap_or_default();
    let mut compute_inputs = Some((circuit, pool));
    loop {
        match admit(&token) {
            Admission::Leader(_guard) => {
                if let Some(data) = entry.load() {
                    return Ok(data);
                }
                let (circuit, pool) = compute_inputs
                    .take()
                    .expect("the leader computes at most once");
                let charac = time_phase(Phase::StageBuild, || {
                    StageCharacterizer::from_stage(circuit)
                })?;
                let data = time_phase(Phase::GateSim, || {
                    characterize_workload_on(&charac, trace, cfg, pool)
                })?;
                entry.store(&data);
                return Ok(data);
            }
            // The leader finished while we waited. Loop: the next probe
            // (as leader) hits the entry it stored — unless the store
            // failed, in which case this thread recomputes.
            Admission::Waited => {}
        }
    }
}

/// Runs and characterizes a benchmark through the cache — the cached,
/// pooled form of [`crate::experiments::characterize`]. The workload
/// still runs (its trace is the cache key's fingerprint); only the
/// dominant gate-simulation phase is skipped on a hit.
///
/// # Errors
///
/// As [`characterize_workload_cached`].
pub fn characterize_cached(
    benchmark: Benchmark,
    stage: StageKind,
    cfg: &HarnessConfig,
    cache: &CharCache,
    pool: ThreadPool,
) -> Result<BenchmarkData, OptError> {
    let trace = benchmark.run(&cfg.workload);
    characterize_workload_cached(&trace, stage, cfg, cache, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::characterize;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synts-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same(a: &BenchmarkData, b: &BenchmarkData) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.stage, b.stage);
        assert_eq!(a.tnom_v1.to_bits(), b.tnom_v1.to_bits());
        assert_eq!(a.intervals.len(), b.intervals.len());
        for (ia, ib) in a.intervals.iter().zip(&b.intervals) {
            assert_eq!(ia.threads.len(), ib.threads.len());
            for (ta, tb) in ia.threads.iter().zip(&ib.threads) {
                assert_eq!(ta.curve, tb.curve);
                let da: Vec<u64> = ta.normalized_delays.iter().map(|d| d.to_bits()).collect();
                let db: Vec<u64> = tb.normalized_delays.iter().map(|d| d.to_bits()).collect();
                assert_eq!(da, db);
                assert_eq!(ta.instructions.to_bits(), tb.instructions.to_bits());
                assert_eq!(ta.cpi_base.to_bits(), tb.cpi_base.to_bits());
            }
        }
    }

    #[test]
    fn payload_json_round_trips_bit_identically() {
        let cfg = HarnessConfig::quick();
        let fresh = characterize(Benchmark::Radix, StageKind::SimpleAlu, &cfg).expect("ok");
        let back = benchmark_data_from_json(&benchmark_data_to_json(&fresh)).expect("round-trips");
        assert_same(&fresh, &back);
        // And through the rendered text, as on disk.
        let text = benchmark_data_to_json(&fresh).render_pretty();
        let reparsed = benchmark_data_from_json(&Json::parse(&text).expect("valid")).expect("ok");
        assert_same(&fresh, &reparsed);
    }

    #[test]
    fn cold_then_warm_yields_identical_data_and_counts() {
        let dir = tmp_dir("warm");
        let cache = CharCache::at_dir(&dir);
        let cfg = HarnessConfig::quick();
        let before = CacheStats::snapshot();
        let cold = characterize_cached(
            Benchmark::Fmm,
            StageKind::Decode,
            &cfg,
            &cache,
            ThreadPool::sequential(),
        )
        .expect("cold");
        let mid = CacheStats::snapshot().since(before);
        assert_eq!(mid.misses, 1, "cold run misses");
        let warm = characterize_cached(
            Benchmark::Fmm,
            StageKind::Decode,
            &cfg,
            &cache,
            ThreadPool::sequential(),
        )
        .expect("warm");
        let after = CacheStats::snapshot().since(before);
        assert_eq!(after.hits, 1, "warm run hits");
        assert_same(&cold, &warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_or_truncated_entries_recompute() {
        let dir = tmp_dir("corrupt");
        let cache = CharCache::at_dir(&dir);
        let cfg = HarnessConfig::quick();
        let cold = characterize_cached(
            Benchmark::Radix,
            StageKind::Decode,
            &cfg,
            &cache,
            ThreadPool::sequential(),
        )
        .expect("cold");
        let entry = std::fs::read_dir(&dir)
            .expect("dir")
            .next()
            .expect("one entry")
            .expect("entry")
            .path();
        for garbage in ["", "{", "{\"key\": 1, \"data\": 2}", "not json at all"] {
            std::fs::write(&entry, garbage).expect("write");
            let again = characterize_cached(
                Benchmark::Radix,
                StageKind::Decode,
                &cfg,
                &cache,
                ThreadPool::sequential(),
            )
            .unwrap_or_else(|e| panic!("garbage {garbage:?} must recompute, got {e}"));
            assert_same(&cold, &again);
        }
        // A truncated valid entry (half the bytes) also recomputes.
        let full = std::fs::read_to_string(&entry).expect("read");
        std::fs::write(&entry, &full[..full.len() / 2]).expect("write");
        let again = characterize_cached(
            Benchmark::Radix,
            StageKind::Decode,
            &cfg,
            &cache,
            ThreadPool::sequential(),
        )
        .expect("truncated entry recomputes");
        assert_same(&cold, &again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_configs_and_disabled_cache_touches_nothing() {
        let cfg = HarnessConfig::quick();
        let trace = Benchmark::Radix.run(&cfg.workload);
        let netlist_for = |stage: StageKind| {
            circuits::build_stage(stage, cfg.workload.width)
                .expect("stage")
                .netlist()
                .clone()
        };
        let decode = netlist_for(StageKind::Decode);
        let k1 = cache_key(&trace, StageKind::Decode, &cfg, &decode).render();
        let k2 = cache_key(
            &trace,
            StageKind::SimpleAlu,
            &cfg,
            &netlist_for(StageKind::SimpleAlu),
        )
        .render();
        assert_ne!(k1, k2, "stage is part of the key");
        let mut other = cfg.clone();
        other.max_samples += 1;
        let k3 = cache_key(&trace, StageKind::Decode, &other, &decode).render();
        assert_ne!(k1, k3, "harness knobs are part of the key");

        let before = CacheStats::snapshot();
        let _ = characterize_cached(
            Benchmark::Radix,
            StageKind::Decode,
            &cfg,
            &CharCache::disabled(),
            ThreadPool::sequential(),
        )
        .expect("ok");
        let after = CacheStats::snapshot().since(before);
        assert_eq!(after.lookups(), 0, "disabled cache never counts");
    }
}
