//! The online SynTS controller (paper Sec 4.3): sampling-based error
//! estimation at the start of each barrier interval, followed by
//! SynTS-Poly on the estimates.
//!
//! At the start of an interval every thread spends its first `N_samp`
//! instructions in a sampling phase: all threads at a fixed voltage
//! `V_samp`, each spending `N_samp / S` instructions at each TSR level while
//! hardware counters record errors. The resulting per-level error fractions
//! form the estimate `~err_i` ([`timing::SampledCurve`]); SynTS-Poly then
//! assigns operating points for the remainder of the interval. Sampling
//! time and energy — including the Razor recoveries it provokes — are
//! charged to the interval, which is exactly the online-vs-offline overhead
//! Fig 6.18 quantifies.

use timing::{EnergyDelay, ErrorCurve, SampledCurve, Voltage};

use crate::error::OptError;
use crate::model::{evaluate, thread_energy, thread_time, Assignment, SystemConfig, ThreadProfile};
use crate::parallel::ThreadPool;
use crate::poly::synts_poly;
use crate::solver::{Poly, Solver};

/// Sampling-phase knobs (Sec 4.3): how many instructions to spend, at
/// what voltage, and what a frequency switch costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingPlan {
    /// Instructions per thread spent sampling (`N_samp`). The paper uses
    /// 50 K, or 10 K for short-interval benchmarks — roughly 10% of the
    /// interval.
    pub n_samp: usize,
    /// Voltage during sampling (`V_samp`); the paper uses the nominal chip
    /// voltage.
    pub v_samp: Voltage,
    /// Stall cycles (at nominal voltage) charged per clock re-lock. The
    /// sampling phase performs `S − 1` frequency steps plus one final
    /// switch to the optimized operating point, so an interval pays
    /// `S · transition_cycles` in total. The paper assumes instantaneous
    /// switching (`0`, the default); realistic PLL re-locks cost tens of
    /// microseconds-equivalent — this knob quantifies that overhead.
    pub transition_cycles: f64,
}

impl SamplingPlan {
    /// The paper's setting: `N_samp` = 10% of the interval length (at least
    /// one instruction per TSR level), sampled at nominal voltage, free
    /// frequency switches.
    #[must_use]
    pub fn paper_default(interval_len: usize, s_levels: usize) -> SamplingPlan {
        SamplingPlan {
            n_samp: (interval_len / 10).max(s_levels),
            v_samp: Voltage::NOMINAL,
            transition_cycles: 0.0,
        }
    }

    /// The same plan with a per-switch re-lock cost.
    #[must_use]
    pub fn with_transition_cycles(mut self, cycles: f64) -> SamplingPlan {
        self.transition_cycles = cycles;
        self
    }
}

/// Everything the controller produced for one barrier interval.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// Per-thread error-curve estimates from the sampling phase.
    pub estimates: Vec<SampledCurve>,
    /// The operating points chosen from the estimates.
    pub assignment: Assignment,
    /// Energy/time of the sampling phase alone (the online overhead).
    pub sampling: EnergyDelay,
    /// Energy/time of the whole interval (sampling + optimized remainder),
    /// evaluated against the *true* error curves.
    pub total: EnergyDelay,
}

/// Simulates the sampling phase for one thread and returns its estimate.
///
/// `normalized_delays` is the thread's per-instruction sensitized delay
/// trace (each in `[0, 1]`, instruction order). The first `n_samp` entries
/// are consumed in `S` chunks, chunk `k` executing at TSR level `k`; an
/// instruction errs in chunk `k` iff its normalized delay exceeds `R_k`
/// (voltage cancels — see [`timing::DelayTrace`]).
///
/// # Errors
///
/// Returns [`OptError::Timing`] if the trace is shorter than one
/// instruction per level.
pub fn estimate_curve(
    cfg: &SystemConfig,
    normalized_delays: &[f64],
    plan: SamplingPlan,
) -> Result<SampledCurve, OptError> {
    let s = cfg.s();
    if normalized_delays.is_empty() {
        // A thread with no activity on this stage cannot err: the counters
        // read zero at every level.
        let zeros: Vec<(f64, f64)> = cfg.tsr_levels.iter().map(|&r| (r, 0.0)).collect();
        return Ok(SampledCurve::from_points(zeros)?);
    }
    let n_samp = plan.n_samp.min(normalized_delays.len());
    let chunk = n_samp / s;
    if chunk == 0 {
        return Err(OptError::Timing(timing::TimingError::EmptyTrace));
    }
    let mut counts = Vec::with_capacity(s);
    for (k, &r) in cfg.tsr_levels.iter().enumerate() {
        let lo = k * chunk;
        let hi = lo + chunk;
        let errors = normalized_delays[lo..hi].iter().filter(|&&d| d > r).count() as u64;
        counts.push((r, errors, chunk as u64));
    }
    Ok(SampledCurve::from_counts(&counts)?)
}

/// Energy/time cost of one thread's sampling phase, Razor recoveries
/// included.
fn sampling_cost(
    cfg: &SystemConfig,
    normalized_delays: &[f64],
    cpi_base: f64,
    plan: SamplingPlan,
) -> EnergyDelay {
    let s = cfg.s();
    let n_samp = plan.n_samp.min(normalized_delays.len());
    let chunk = n_samp / s;
    let tnom = cfg.tnom(plan.v_samp);
    let v2 = plan.v_samp.energy_scale();
    let mut time = 0.0;
    let mut energy = 0.0;
    for (k, &r) in cfg.tsr_levels.iter().enumerate() {
        let lo = k * chunk;
        let hi = lo + chunk;
        let errors = normalized_delays[lo..hi].iter().filter(|&&d| d > r).count() as f64;
        let cycles = chunk as f64 * cpi_base + errors * cfg.c_penalty;
        time += r * tnom * cycles;
        energy += cfg.alpha * v2 * cycles;
    }
    // Clock re-locks: S − 1 steps during sampling plus the final switch to
    // the optimized point. The core stalls (burning leakage-free idle
    // cycles at V_samp) for `transition_cycles` per switch.
    let switches = s as f64;
    let stall = switches * plan.transition_cycles;
    time += stall * tnom;
    energy += cfg.alpha * v2 * stall * 0.1; // clock tree only, ~10% activity
    EnergyDelay::new(energy, time)
}

/// One thread's input to the online controller: its full-interval delay
/// trace (normalized) and its error-free CPI.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Per-instruction normalized sensitized delays, instruction order.
    pub normalized_delays: Vec<f64>,
    /// Error-free CPI of the thread.
    pub cpi_base: f64,
}

impl ThreadTrace {
    /// Creates a thread trace.
    #[must_use]
    pub fn new(normalized_delays: Vec<f64>, cpi_base: f64) -> ThreadTrace {
        ThreadTrace {
            normalized_delays,
            cpi_base,
        }
    }

    /// The exact error curve of the whole interval (the offline oracle).
    /// An empty trace (no activity on the stage) yields the zero curve.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for interface symmetry.
    pub fn exact_curve(&self) -> Result<ErrorCurve, OptError> {
        if self.normalized_delays.is_empty() {
            return Ok(ErrorCurve::from_normalized_delays(vec![0.0])?);
        }
        Ok(ErrorCurve::from_normalized_delays(
            self.normalized_delays.clone(),
        )?)
    }
}

/// Runs one barrier interval under the online scheme, optimizing the
/// post-sampling remainder with SynTS-Poly (the paper's configuration).
///
/// # Errors
///
/// Propagates [`OptError`] from estimation and optimization; fails on empty
/// trace sets.
pub fn run_interval(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
    plan: SamplingPlan,
) -> Result<IntervalOutcome, OptError> {
    run_interval_impl(cfg, traces, theta, plan, None, &Poly)
}

/// [`run_interval`] with an explicit [`Solver`] choosing the operating
/// points from the sampled estimates — the online controller's dispatch
/// point onto the unified solver interface. The solver sees
/// [`timing::SampledCurve`] profiles, exactly what the sampling hardware
/// produces.
///
/// # Errors
///
/// As [`run_interval`].
pub fn run_interval_with(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
    plan: SamplingPlan,
    solver: &dyn Solver<SampledCurve>,
) -> Result<IntervalOutcome, OptError> {
    run_interval_full(cfg, traces, theta, plan, None, solver)
}

/// [`run_interval`] with externally supplied whole-interval `N_i`
/// estimates driving the optimization step (the [`crate::criticality`]
/// predictors use this). Accounting still runs against the true traces.
///
/// # Errors
///
/// As [`run_interval`], plus [`OptError::BadConfig`] on a thread-count
/// mismatch.
pub fn run_interval_with_workload(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
    plan: SamplingPlan,
    ni: &[f64],
) -> Result<IntervalOutcome, OptError> {
    run_interval_full(cfg, traces, theta, plan, Some(ni), &Poly)
}

/// The fully general online interval: optional external `N_i` estimates
/// and an explicit [`Solver`] together. The three convenience wrappers
/// above all delegate here.
///
/// # Errors
///
/// As [`run_interval`], plus [`OptError::BadConfig`] if `ni` is present
/// with a thread count different from `traces`.
pub fn run_interval_full(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
    plan: SamplingPlan,
    ni: Option<&[f64]>,
    solver: &dyn Solver<SampledCurve>,
) -> Result<IntervalOutcome, OptError> {
    if let Some(est) = ni {
        if est.len() != traces.len() {
            return Err(OptError::BadConfig("Ni estimate thread count mismatch"));
        }
    }
    run_interval_impl(cfg, traces, theta, plan, ni, solver)
}

fn run_interval_impl(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
    plan: SamplingPlan,
    ni: Option<&[f64]>,
    solver: &dyn Solver<SampledCurve>,
) -> Result<IntervalOutcome, OptError> {
    cfg.validate()?;
    if traces.is_empty() {
        return Err(OptError::NoThreads);
    }
    // 1. Sampling phase: estimates + overhead.
    let mut estimates = Vec::with_capacity(traces.len());
    let mut sampling_energy = 0.0;
    let mut sampling_time = 0.0f64;
    for tr in traces {
        estimates.push(estimate_curve(cfg, &tr.normalized_delays, plan)?);
        let cost = sampling_cost(cfg, &tr.normalized_delays, tr.cpi_base, plan);
        sampling_energy += cost.energy;
        // All threads sample concurrently; the phase ends when the slowest
        // finishes.
        sampling_time = sampling_time.max(cost.time);
    }
    let sampling = EnergyDelay::new(sampling_energy, sampling_time);

    // 2. Optimize the remainder of the interval on the estimates.
    let est_profiles: Vec<ThreadProfile<SampledCurve>> = traces
        .iter()
        .zip(&estimates)
        .enumerate()
        .map(|(i, (tr, est))| {
            // With an external workload estimate, the remainder is the
            // predicted interval length minus what sampling consumed;
            // otherwise read the truth from the trace.
            let remaining = match ni {
                Some(est_ni) => {
                    (est_ni[i] - plan.n_samp.min(tr.normalized_delays.len()) as f64).max(1.0)
                }
                None => tr
                    .normalized_delays
                    .len()
                    .saturating_sub(plan.n_samp.min(tr.normalized_delays.len()))
                    .max(1) as f64,
            };
            ThreadProfile::new(remaining, tr.cpi_base, est.clone())
        })
        .collect();
    let assignment = solver.solve(cfg, &est_profiles, theta)?;

    // 3. Account the remainder against the TRUE curves (what actually
    //    happens on silicon once the estimate-driven points are applied).
    let mut total_energy = sampling.energy;
    let mut remainder_time = 0.0f64;
    for (i, tr) in traces.iter().enumerate() {
        let n_used = plan.n_samp.min(tr.normalized_delays.len());
        let rest = &tr.normalized_delays[n_used..];
        if rest.is_empty() {
            continue;
        }
        let true_curve = ErrorCurve::from_normalized_delays(rest.to_vec())?;
        let prof = ThreadProfile::new(rest.len() as f64, tr.cpi_base, true_curve);
        total_energy += thread_energy(cfg, &prof, assignment.points[i]);
        remainder_time = remainder_time.max(thread_time(cfg, &prof, assignment.points[i]));
    }
    let total = EnergyDelay::new(total_energy, sampling.time + remainder_time);

    Ok(IntervalOutcome {
        estimates,
        assignment,
        sampling,
        total,
    })
}

/// Runs a whole sequence of barrier intervals under the online scheme,
/// fanning the per-interval work (sampling simulation, estimate-driven
/// optimization, true-curve accounting) out across `pool`.
///
/// Intervals are independent: each thread re-samples at its barrier, so
/// interval `k+1` never depends on interval `k`'s outcome. That makes
/// this the batched counterpart of calling [`run_interval_with`] in a
/// loop — and the index-ordered collection guarantees the outcome vector
/// is identical to that loop at any worker count.
///
/// # Errors
///
/// As [`run_interval`]; the first failing interval (in input order) wins,
/// exactly as the sequential loop would report.
pub fn run_intervals_batched(
    cfg: &SystemConfig,
    intervals: &[Vec<ThreadTrace>],
    theta: f64,
    plan: SamplingPlan,
    solver: &dyn Solver<SampledCurve>,
    pool: ThreadPool,
) -> Result<Vec<IntervalOutcome>, OptError> {
    pool.try_map(intervals, |_, traces| {
        run_interval_impl(cfg, traces, theta, plan, None, solver)
    })
}

/// Runs the same interval with oracle (offline) knowledge: full traces,
/// no sampling overhead — the normalization baseline of Fig 6.18.
///
/// # Errors
///
/// Propagates [`OptError`] from optimization.
pub fn run_interval_offline(
    cfg: &SystemConfig,
    traces: &[ThreadTrace],
    theta: f64,
) -> Result<(Assignment, EnergyDelay), OptError> {
    cfg.validate()?;
    if traces.is_empty() {
        return Err(OptError::NoThreads);
    }
    let profiles: Vec<ThreadProfile<ErrorCurve>> = traces
        .iter()
        .map(|tr| {
            Ok(ThreadProfile::new(
                tr.normalized_delays.len() as f64,
                tr.cpi_base,
                tr.exact_curve()?,
            ))
        })
        .collect::<Result<_, OptError>>()?;
    let assignment = synts_poly(cfg, &profiles, theta)?;
    let ed = evaluate(cfg, &profiles, &assignment);
    Ok((assignment, ed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::{max_abs_gap, ErrorModel};

    /// Deterministic pseudo-random trace with a given delay band.
    fn trace(seed: u64, n: usize, lo: f64, hi: f64, cpi: f64) -> ThreadTrace {
        let mut state = seed;
        let delays = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 33) as f64 / (1u64 << 31) as f64;
                lo + (hi - lo) * u
            })
            .collect();
        ThreadTrace::new(delays, cpi)
    }

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default(10.0)
    }

    #[test]
    fn estimate_tracks_exact_curve() {
        let cfg = cfg();
        // 50 K instructions (the paper's N_samp scale): each TSR level gets
        // ~830 samples, so binomial noise stays within a few percent.
        let tr = trace(42, 50_000, 0.5, 1.0, 1.0);
        let plan = SamplingPlan::paper_default(tr.normalized_delays.len(), cfg.s());
        let est = estimate_curve(&cfg, &tr.normalized_delays, plan).expect("ok");
        let exact = tr.exact_curve().expect("ok");
        let gap = max_abs_gap(&est, &exact, &cfg.tsr_levels);
        assert!(gap < 0.05, "estimate should track exact curve, gap {gap}");
    }

    #[test]
    fn estimate_requires_enough_samples() {
        let cfg = cfg();
        let tr = trace(1, 3, 0.5, 1.0, 1.0); // 3 instructions, 6 levels
        let plan = SamplingPlan {
            n_samp: 3,
            v_samp: Voltage::NOMINAL,
            transition_cycles: 0.0,
        };
        assert!(estimate_curve(&cfg, &tr.normalized_delays, plan).is_err());
    }

    #[test]
    fn critical_thread_identified() {
        // Thread 0 has much longer delays; its estimated error at
        // aggressive r must be the largest — the property the paper calls
        // out in Fig 6.17 ("the critical thread is always identified").
        let cfg = cfg();
        let traces = [
            trace(7, 5_000, 0.75, 1.0, 1.0),
            trace(8, 5_000, 0.40, 0.85, 1.0),
            trace(9, 5_000, 0.45, 0.88, 1.0),
            trace(10, 5_000, 0.42, 0.86, 1.0),
        ];
        let plan = SamplingPlan::paper_default(5_000, cfg.s());
        let ests: Vec<SampledCurve> = traces
            .iter()
            .map(|t| estimate_curve(&cfg, &t.normalized_delays, plan).expect("ok"))
            .collect();
        let r = cfg.tsr_levels[1];
        let worst = ests
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.err(r).partial_cmp(&b.1.err(r)).expect("finite"))
            .expect("non-empty")
            .0;
        assert_eq!(worst, 0);
    }

    #[test]
    fn online_overhead_is_positive_but_bounded() {
        let cfg = cfg();
        let traces = vec![
            trace(21, 8_000, 0.70, 1.0, 1.2),
            trace(22, 8_000, 0.45, 0.9, 1.0),
            trace(23, 8_000, 0.50, 0.92, 1.1),
            trace(24, 8_000, 0.40, 0.88, 1.0),
        ];
        let theta = {
            let profiles: Vec<ThreadProfile<ErrorCurve>> = traces
                .iter()
                .map(|t| {
                    ThreadProfile::new(
                        t.normalized_delays.len() as f64,
                        t.cpi_base,
                        t.exact_curve().expect("ok"),
                    )
                })
                .collect();
            crate::pareto::theta_equal_weight(&cfg, &profiles).expect("ok")
        };
        let plan = SamplingPlan::paper_default(8_000, cfg.s());
        let online = run_interval(&cfg, &traces, theta, plan).expect("ok");
        let (_, offline) = run_interval_offline(&cfg, &traces, theta).expect("ok");
        let edp_ratio = online.total.edp() / offline.edp();
        // The paper reports ~10% average overhead; allow a generous band
        // but insist the online scheme is not catastrophically worse and
        // no better than the oracle beyond noise.
        assert!(
            edp_ratio > 0.9,
            "online cannot beat the offline oracle by >10%: {edp_ratio}"
        );
        assert!(edp_ratio < 1.6, "online overhead out of range: {edp_ratio}");
        assert!(online.sampling.time > 0.0);
        assert!(online.sampling.energy > 0.0);
    }

    #[test]
    fn transition_cost_charges_sampling_overhead() {
        let cfg = cfg();
        let traces = vec![
            trace(5, 6_000, 0.5, 1.0, 1.0),
            trace(6, 6_000, 0.4, 0.9, 1.0),
        ];
        let free = SamplingPlan::paper_default(6_000, cfg.s());
        let costly = free.with_transition_cycles(500.0);
        let out_free = run_interval(&cfg, &traces, 1.0, free).expect("ok");
        let out_costly = run_interval(&cfg, &traces, 1.0, costly).expect("ok");
        assert!(out_costly.sampling.time > out_free.sampling.time);
        assert!(out_costly.sampling.energy > out_free.sampling.energy);
        assert!(out_costly.total.time > out_free.total.time);
        // The optimization outcome itself is unchanged — switching cost is
        // pure overhead, not an input to the assignment.
        assert_eq!(out_costly.assignment, out_free.assignment);
    }

    #[test]
    fn zero_transition_cost_is_the_paper_default() {
        let plan = SamplingPlan::paper_default(10_000, 6);
        assert_eq!(plan.transition_cycles, 0.0);
    }

    #[test]
    fn outcome_contains_assignment_per_thread() {
        let cfg = cfg();
        let traces = vec![
            trace(3, 4_000, 0.5, 1.0, 1.0),
            trace(4, 4_000, 0.4, 0.9, 1.0),
        ];
        let plan = SamplingPlan::paper_default(4_000, cfg.s());
        let out = run_interval(&cfg, &traces, 1.0, plan).expect("ok");
        assert_eq!(out.assignment.len(), 2);
        assert_eq!(out.estimates.len(), 2);
        assert!(out.total.time >= out.sampling.time);
        assert!(out.total.energy >= out.sampling.energy);
    }
}
