//! The unified [`Solver`] abstraction.
//!
//! Every optimization scheme in this crate — the paper's solvers
//! ([`crate::synts_poly`], [`crate::synts_milp`],
//! [`crate::synts_exhaustive`]), the evaluation baselines and the
//! extension solvers (power-capped, leakage-aware, thrifty barrier) —
//! is reachable behind one object-safe interface:
//!
//! * [`Solver`] — `solve(cfg, profiles, theta) -> Assignment` plus
//!   [`Solver::name`] and [`Solver::capabilities`];
//! * [`SolverRegistry`] — string-keyed lookup over boxed solvers, so
//!   sweeps, experiment harnesses and services can dispatch on
//!   configuration data instead of hard-coded matches;
//! * [`Synts`] / [`SyntsBuilder`] — the fluent front door:
//!   `Synts::builder().scheme("synts_poly").theta(1.0).build()`.
//!
//! The trait is generic over the error model `M` (an [`ErrorModel`]), so
//! the same solver values serve exact offline curves
//! ([`timing::ErrorCurve`]) and online sampled estimates
//! ([`timing::SampledCurve`]) alike.
//!
//! ```
//! use synts_core::{Synts, SystemConfig, ThreadProfile};
//! use timing::ErrorCurve;
//!
//! # fn main() -> Result<(), synts_core::OptError> {
//! let cfg = SystemConfig::paper_default(100.0);
//! let curve = |lo: f64| {
//!     ErrorCurve::from_normalized_delays(
//!         (0..64).map(|i| lo + (1.0 - lo) * i as f64 / 64.0).collect(),
//!     )
//! };
//! let profiles = vec![
//!     ThreadProfile::new(10_000.0, 1.2, curve(0.7)?),
//!     ThreadProfile::new(10_000.0, 1.0, curve(0.4)?),
//! ];
//! let synts = Synts::builder().scheme("synts_poly").theta(1.0).build()?;
//! let assignment = synts.solve(&cfg, &profiles)?;
//! assert_eq!(assignment.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use timing::{EnergyDelay, ErrorCurve, ErrorModel};

use crate::baselines;
use crate::error::OptError;
use crate::exhaustive::{self, synts_exhaustive};
use crate::leakage::{synts_poly_leakage, LeakageModel};
use crate::milp_formulation::{self, synts_milp_with, MilpTuning};
use crate::model::{evaluate, Assignment, SystemConfig, ThreadProfile};
use crate::parallel::{worker_count, ThreadPool};
use crate::poly::{self, synts_poly, PreparedTables};
use crate::power_cap::synts_poly_power_capped;
use crate::thrifty::{thrifty_barrier, ThriftyConfig};

/// One instance of the SynTS-OPT problem, by reference: the inputs of one
/// [`Solver::solve`] call, packaged so batches can be expressed as slices.
///
/// Batches commonly share `cfg`/`profiles` across many θ values (a Pareto
/// sweep) or share `cfg` across many profile sets (per-interval
/// re-optimization); [`Solver::solve_batch`] overrides exploit that
/// sharing by pointer identity, so building requests from the *same*
/// borrowed slices (rather than clones) is what unlocks the amortization.
#[derive(Debug)]
pub struct SolveRequest<'a, M: ErrorModel> {
    /// The platform (voltage table, TSR levels, penalties).
    pub cfg: &'a SystemConfig,
    /// Per-thread workload profiles.
    pub profiles: &'a [ThreadProfile<M>],
    /// The energy/time weight θ of Eq 4.4.
    pub theta: f64,
}

impl<'a, M: ErrorModel> SolveRequest<'a, M> {
    /// Creates a request.
    #[must_use]
    pub fn new(
        cfg: &'a SystemConfig,
        profiles: &'a [ThreadProfile<M>],
        theta: f64,
    ) -> SolveRequest<'a, M> {
        SolveRequest {
            cfg,
            profiles,
            theta,
        }
    }

    /// Whether `other` poses the same instance (config and profiles are
    /// the same allocations) at a possibly different θ.
    fn same_instance(&self, other: &SolveRequest<'_, M>) -> bool {
        std::ptr::eq(self.cfg, other.cfg)
            && self.profiles.as_ptr() == other.profiles.as_ptr()
            && self.profiles.len() == other.profiles.len()
    }
}

// Manual impls: the derives would demand `M: Clone`/`M: Copy`, but every
// field is a reference or an `f64` regardless of `M`.
impl<M: ErrorModel> Clone for SolveRequest<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M: ErrorModel> Copy for SolveRequest<'_, M> {}

/// What a solver optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Objective {
    /// The weighted SynTS-OPT objective of Eq 4.4: `Σ en_i + θ·t_exec`
    /// (possibly under a generalized energy model, e.g. with leakage).
    WeightedEnergyTime,
    /// Barrier execution time under an average-power cap — the Sec 4.1
    /// generalization.
    TimeUnderPowerCap,
    /// A fixed architectural policy that does not optimize Eq 4.4
    /// (Nominal V/F, the thrifty barrier).
    Policy,
}

/// Static facts about a solver, for capability-based dispatch.
///
/// Sweep and experiment code uses these instead of matching on solver
/// identity: e.g. the cross-solver certification test checks `exact`
/// solvers of the [`Objective::WeightedEnergyTime`] objective against
/// exhaustive search, and sweep drivers skip `uses_theta == false`
/// schemes when varying θ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// The objective the solver addresses.
    pub objective: Objective,
    /// Provably optimal for its objective (over the dynamic-energy model
    /// it was configured with).
    pub exact: bool,
    /// Polynomial runtime in `(M, Q, S)` — safe for online use.
    pub polynomial: bool,
    /// Whether θ influences the result.
    pub uses_theta: bool,
    /// May choose timing-speculation ratios below 1.
    pub speculates: bool,
}

/// A joint per-thread voltage/frequency/timing-speculation solver.
///
/// Implementations are cheap value objects (unit structs or small
/// configuration holders); the expensive work happens in
/// [`Solver::solve`]. All implementations are `Send + Sync` so registries
/// can be shared across sweep worker threads.
pub trait Solver<M: ErrorModel>: Send + Sync {
    /// Stable registry key, e.g. `"synts_poly"`.
    fn name(&self) -> &'static str;

    /// Human-readable label for tables and figures, e.g. `"SynTS"`.
    fn label(&self) -> &'static str {
        self.name()
    }

    /// Static capability flags.
    fn capabilities(&self) -> Capabilities;

    /// Chooses one operating point per thread for weight `theta`.
    ///
    /// # Errors
    ///
    /// [`OptError`] for malformed inputs or solver-specific failures
    /// (infeasible cap, oversized exhaustive instance, MILP failure).
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError>;

    /// Solves and evaluates in one step.
    ///
    /// # Errors
    ///
    /// As [`Solver::solve`].
    fn solve_evaluated(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<(Assignment, EnergyDelay), OptError> {
        let assignment = self.solve(cfg, profiles, theta)?;
        let ed = evaluate(cfg, profiles, &assignment);
        Ok((assignment, ed))
    }

    /// Solves a batch of requests, one result per request, in order.
    ///
    /// The default is the element-wise loop — every implementation MUST
    /// be observationally identical to it (the batch-equivalence property
    /// tests enforce this for all registered solvers). Overrides exist to
    /// amortize per-instance setup: the table-driven solvers
    /// ([`Poly`], [`Milp`]) build their `(thread, voltage, TSR)`
    /// time/energy tables once per run of requests sharing the same
    /// `cfg`/`profiles` borrows, which is what a θ sweep or a
    /// per-interval re-optimization batch looks like.
    fn solve_batch(&self, requests: &[SolveRequest<'_, M>]) -> Vec<Result<Assignment, OptError>> {
        requests
            .iter()
            .map(|r| self.solve(r.cfg, r.profiles, r.theta))
            .collect()
    }
}

// `SolverRegistry::get` returns `Result<Arc<dyn Solver>, _>`; without
// this, downstream `unwrap_err`/`expect_err` (which require `T: Debug`)
// would not compile.
impl<M: ErrorModel> std::fmt::Debug for dyn Solver<M> + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Solver({})", self.name())
    }
}

/// Shared batch driver for table-based solvers: validates each request,
/// rebuilds the θ-independent [`PreparedTables`] (time/energy tables plus
/// their sorted/dominance-pruned companion) only when the instance
/// changes (by pointer identity), dedupes repeated θ values within an
/// instance, and runs `solve_prepared` per distinct θ.
///
/// The θ-dedup matters in practice: log-spaced grids round-trip
/// duplicate values (a one-point grid, spec files with repeated entries),
/// and the solvers are deterministic, so a repeated θ must — and now
/// does — reuse the already-solved assignment instead of solving again.
fn batch_with_tables<'a, M: ErrorModel>(
    requests: &[SolveRequest<'a, M>],
    solve_prepared: impl Fn(&PreparedTables, f64) -> Result<Assignment, OptError>,
) -> Vec<Result<Assignment, OptError>> {
    let mut cached: Option<(SolveRequest<'a, M>, PreparedTables)> = None;
    // (θ bits → result) for the *current* instance; grids are small, so a
    // linear scan beats hashing and keeps iteration deterministic.
    let mut solved: Vec<(u64, Result<Assignment, OptError>)> = Vec::new();
    requests
        .iter()
        .map(|req| {
            req.cfg.validate()?;
            poly::validate_theta(req.theta)?;
            if req.profiles.is_empty() {
                return Err(OptError::NoThreads);
            }
            let rebuild = !matches!(&cached, Some((prev, _)) if prev.same_instance(req));
            if rebuild {
                cached = Some((*req, PreparedTables::build(req.cfg, req.profiles)));
                solved.clear();
            }
            let bits = req.theta.to_bits();
            if let Some((_, result)) = solved.iter().find(|(b, _)| *b == bits) {
                return result.clone();
            }
            let (_, prepared) = cached.as_ref().expect("cache was just filled");
            let result = solve_prepared(prepared, req.theta);
            solved.push((bits, result.clone()));
            result
        })
        .collect()
}

/// Algorithm 1 — the exact polynomial-time SynTS solver (the scheme the
/// paper labels simply "SynTS").
#[derive(Debug, Clone, Copy, Default)]
pub struct Poly;

impl<M: ErrorModel> Solver<M> for Poly {
    fn name(&self) -> &'static str {
        "synts_poly"
    }
    fn label(&self) -> &'static str {
        "SynTS"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::WeightedEnergyTime,
            exact: true,
            polynomial: true,
            uses_theta: true,
            speculates: true,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError> {
        synts_poly(cfg, profiles, theta)
    }

    fn solve_batch(&self, requests: &[SolveRequest<'_, M>]) -> Vec<Result<Assignment, OptError>> {
        batch_with_tables(requests, poly::solve_prepared)
    }
}

/// The SynTS-MILP formulation (Sec 4.2.1), via the in-workspace
/// branch-and-bound solver. Same optima as [`Poly`]; exponential worst
/// case — kept as an independent correctness oracle. The search is
/// warm-started from Algorithm 1's optimum on the shared θ-independent
/// tables (see [`crate::milp_formulation`]), so the branch-and-bound
/// mostly just *certifies* the incumbent — which is exactly what an
/// oracle is for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Milp {
    /// Branch-and-bound node budget per θ; `None` uses
    /// [`milp::DEFAULT_NODE_LIMIT`]. An exhausted budget surfaces as
    /// [`OptError::Milp`] reporting the nodes explored.
    pub node_limit: Option<usize>,
}

impl Milp {
    /// A MILP solver with an explicit branch-and-bound node budget.
    #[must_use]
    pub fn with_node_limit(node_limit: usize) -> Milp {
        Milp {
            node_limit: Some(node_limit),
        }
    }

    fn tuning(&self) -> MilpTuning {
        MilpTuning {
            node_limit: self.node_limit,
        }
    }
}

impl<M: ErrorModel> Solver<M> for Milp {
    fn name(&self) -> &'static str {
        "synts_milp"
    }
    fn label(&self) -> &'static str {
        "SynTS-MILP"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::WeightedEnergyTime,
            exact: true,
            polynomial: false,
            uses_theta: true,
            speculates: true,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError> {
        synts_milp_with(cfg, profiles, theta, &self.tuning())
    }

    fn solve_batch(&self, requests: &[SolveRequest<'_, M>]) -> Vec<Result<Assignment, OptError>> {
        let tuning = self.tuning();
        batch_with_tables(requests, |prepared, theta| {
            milp_formulation::solve_prepared(prepared, theta, &tuning)
        })
    }
}

/// Brute-force enumeration over the dominance-pruned per-thread
/// candidate grid; refuses instances whose pruned product exceeds
/// [`crate::EXHAUSTIVE_LIMIT`]. Certification only — but note it now
/// shares [`crate::poly`]'s pruning with the solvers it certifies, so
/// a pruning bug would be common-mode across all three; *fully*
/// independent certification is [`crate::reference::synts_exhaustive_naive`]
/// (the unpruned odometer), which the engine is property-tested
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl<M: ErrorModel> Solver<M> for Exhaustive {
    fn name(&self) -> &'static str {
        "synts_exhaustive"
    }
    fn label(&self) -> &'static str {
        "Exhaustive"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::WeightedEnergyTime,
            exact: true,
            polynomial: false,
            uses_theta: true,
            speculates: true,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError> {
        synts_exhaustive(cfg, profiles, theta)
    }

    fn solve_batch(&self, requests: &[SolveRequest<'_, M>]) -> Vec<Result<Assignment, OptError>> {
        batch_with_tables(requests, |prepared, theta| {
            exhaustive::solve_pruned(&prepared.tables, &prepared.sorted, theta)
        })
    }
}

/// Nominal V/F: highest voltage, no scaling, no speculation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nominal;

impl<M: ErrorModel> Solver<M> for Nominal {
    fn name(&self) -> &'static str {
        "nominal"
    }
    fn label(&self) -> &'static str {
        "Nominal"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::Policy,
            exact: false,
            polynomial: true,
            uses_theta: false,
            speculates: false,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        _theta: f64,
    ) -> Result<Assignment, OptError> {
        baselines::nominal(cfg, profiles)
    }
}

/// Joint per-thread DVFS without speculation (`r = 1`) — the paper's
/// stand-in for conventional barrier-aware DVFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTs;

impl<M: ErrorModel> Solver<M> for NoTs {
    fn name(&self) -> &'static str {
        "no_ts"
    }
    fn label(&self) -> &'static str {
        "No-TS"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::WeightedEnergyTime,
            // Exact only within the r = 1 subspace, not globally.
            exact: false,
            polynomial: true,
            uses_theta: true,
            speculates: false,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError> {
        baselines::no_ts(cfg, profiles, theta)
    }
}

/// Independent per-core timing speculation: each thread minimizes its own
/// `en_i + θ·t_i`, ignoring barrier coupling.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerCoreTs;

impl<M: ErrorModel> Solver<M> for PerCoreTs {
    fn name(&self) -> &'static str {
        "per_core_ts"
    }
    fn label(&self) -> &'static str {
        "Per-core TS"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::WeightedEnergyTime,
            // Optimal per core, not for the joint barrier objective.
            exact: false,
            polynomial: true,
            uses_theta: true,
            speculates: true,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError> {
        baselines::per_core_ts(cfg, profiles, theta)
    }
}

/// The power-constrained variant: minimizes barrier time subject to an
/// average-power cap (θ is ignored).
#[derive(Debug, Clone, Copy)]
pub struct PowerCap {
    /// Average-power budget for the interval.
    pub p_cap: f64,
}

impl PowerCap {
    /// Solver for a concrete power budget.
    #[must_use]
    pub fn new(p_cap: f64) -> PowerCap {
        PowerCap { p_cap }
    }

    /// A budget so large it never binds — the pure speed optimum.
    #[must_use]
    pub fn uncapped() -> PowerCap {
        PowerCap { p_cap: 1e30 }
    }
}

impl Default for PowerCap {
    fn default() -> PowerCap {
        PowerCap::uncapped()
    }
}

impl<M: ErrorModel> Solver<M> for PowerCap {
    fn name(&self) -> &'static str {
        "power_cap"
    }
    fn label(&self) -> &'static str {
        "Power-capped SynTS"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::TimeUnderPowerCap,
            exact: true,
            polynomial: true,
            uses_theta: false,
            speculates: true,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        _theta: f64,
    ) -> Result<Assignment, OptError> {
        synts_poly_power_capped(cfg, profiles, self.p_cap).map(|sol| sol.assignment)
    }
}

/// Algorithm 1 generalized to the leakage-extended energy model; exact
/// for that model ([`crate::leakage`]).
#[derive(Debug, Clone, Copy)]
pub struct Leakage {
    /// The static-power model charged over wall-clock time.
    pub model: LeakageModel,
}

impl Leakage {
    /// Solver for a concrete leakage model.
    #[must_use]
    pub fn new(model: LeakageModel) -> Leakage {
        Leakage { model }
    }
}

impl Default for Leakage {
    fn default() -> Leakage {
        Leakage {
            model: LeakageModel::none(),
        }
    }
}

impl<M: ErrorModel> Solver<M> for Leakage {
    fn name(&self) -> &'static str {
        "synts_leakage"
    }
    fn label(&self) -> &'static str {
        "SynTS (leakage-aware)"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::WeightedEnergyTime,
            exact: true,
            polynomial: true,
            uses_theta: true,
            speculates: true,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        theta: f64,
    ) -> Result<Assignment, OptError> {
        synts_poly_leakage(cfg, profiles, theta, &self.model)
    }
}

/// The thrifty-barrier baseline: nominal V/F everywhere, early arrivals
/// sleep at the barrier (related work, the paper's ref \[4\]).
#[derive(Debug, Clone, Copy)]
pub struct Thrifty {
    /// Leakage model under which sleeping pays off.
    pub leak: LeakageModel,
    /// Sleep-state hardware parameters.
    pub config: ThriftyConfig,
}

impl Thrifty {
    /// Solver for concrete leakage and sleep parameters.
    #[must_use]
    pub fn new(leak: LeakageModel, config: ThriftyConfig) -> Thrifty {
        Thrifty { leak, config }
    }
}

impl Default for Thrifty {
    fn default() -> Thrifty {
        Thrifty {
            leak: LeakageModel::none(),
            config: ThriftyConfig::classic(),
        }
    }
}

impl<M: ErrorModel> Solver<M> for Thrifty {
    fn name(&self) -> &'static str {
        "thrifty"
    }
    fn label(&self) -> &'static str {
        "Thrifty barrier"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            objective: Objective::Policy,
            exact: false,
            polynomial: true,
            uses_theta: false,
            speculates: false,
        }
    }
    fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        _theta: f64,
    ) -> Result<Assignment, OptError> {
        thrifty_barrier(cfg, profiles, &self.leak, &self.config).map(|out| out.assignment)
    }
}

/// Names of every solver this crate ships, in registration order.
pub const DEFAULT_SOLVER_NAMES: [&str; 9] = [
    "synts_poly",
    "synts_milp",
    "synts_exhaustive",
    "nominal",
    "no_ts",
    "per_core_ts",
    "power_cap",
    "synts_leakage",
    "thrifty",
];

/// The canonical name → solver mapping — the single source of truth
/// behind [`SolverRegistry::with_defaults`]. Extension solvers carry
/// neutral default parameters (uncapped power, zero leakage). Returns
/// `None` for names outside [`DEFAULT_SOLVER_NAMES`].
#[must_use]
pub fn default_solver<M: ErrorModel + 'static>(name: &str) -> Option<Arc<dyn Solver<M>>> {
    Some(match name {
        "synts_poly" => Arc::new(Poly),
        "synts_milp" => Arc::new(Milp::default()),
        "synts_exhaustive" => Arc::new(Exhaustive),
        "nominal" => Arc::new(Nominal),
        "no_ts" => Arc::new(NoTs),
        "per_core_ts" => Arc::new(PerCoreTs),
        "power_cap" => Arc::new(PowerCap::uncapped()),
        "synts_leakage" => Arc::new(Leakage::default()),
        "thrifty" => Arc::new(Thrifty::default()),
        _ => return None,
    })
}

/// String-keyed solver lookup, keyed by [`Solver::name`].
///
/// [`SolverRegistry::with_defaults`] registers every scheme this crate
/// ships; services and experiments register extras (or re-register a name
/// with different parameters, e.g. a concrete power budget) on top.
pub struct SolverRegistry<M: ErrorModel = ErrorCurve> {
    solvers: BTreeMap<&'static str, Arc<dyn Solver<M>>>,
}

impl<M: ErrorModel + 'static> SolverRegistry<M> {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> SolverRegistry<M> {
        SolverRegistry {
            solvers: BTreeMap::new(),
        }
    }

    /// A registry holding every solver this crate ships
    /// ([`DEFAULT_SOLVER_NAMES`]), under its [`Solver::name`] key.
    #[must_use]
    pub fn with_defaults() -> SolverRegistry<M> {
        let mut r = SolverRegistry::empty();
        for name in DEFAULT_SOLVER_NAMES {
            r.register(default_solver(name).expect("listed names are constructible"));
        }
        r
    }

    /// Registers a solver under its own name, returning any displaced
    /// previous registrant.
    pub fn register(&mut self, solver: Arc<dyn Solver<M>>) -> Option<Arc<dyn Solver<M>>> {
        self.solvers.insert(solver.name(), solver)
    }

    /// Looks a solver up by name.
    ///
    /// # Errors
    ///
    /// [`OptError::UnknownSolver`] listing every registered key, so the
    /// message tells a CLI/spec user what *is* available.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Solver<M>>, OptError> {
        self.solvers
            .get(name)
            .cloned()
            .ok_or_else(|| OptError::UnknownSolver {
                name: name.to_string(),
                known: self.names().map(str::to_string).collect(),
            })
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.solvers.keys().copied()
    }

    /// The registered key closest to `name` by edit distance, when close
    /// enough to be a plausible typo ("did you mean ...?").
    #[must_use]
    pub fn suggest(&self, name: &str) -> Option<&'static str> {
        crate::error::closest_match(name, self.names())
    }

    /// All `(name, solver)` pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Arc<dyn Solver<M>>)> {
        self.solvers.iter().map(|(k, v)| (*k, v))
    }

    /// Number of registered solvers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

impl<M: ErrorModel + 'static> Default for SolverRegistry<M> {
    fn default() -> SolverRegistry<M> {
        SolverRegistry::with_defaults()
    }
}

/// A configured optimizer: a solver plus the weight θ it runs at.
///
/// Built with [`Synts::builder`]; see the [module docs](self) for an
/// end-to-end example.
pub struct Synts<M: ErrorModel = ErrorCurve> {
    solver: Arc<dyn Solver<M>>,
    theta: f64,
    pool: ThreadPool,
}

impl<M: ErrorModel> std::fmt::Debug for Synts<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synts")
            .field("solver", &self.solver.name())
            .field("theta", &self.theta)
            .field("workers", &self.pool.workers())
            .finish()
    }
}

impl Synts<ErrorCurve> {
    /// Starts a fluent configuration over exact offline error curves —
    /// the common case, so `Synts::builder()` infers without a type
    /// annotation. For other error models (e.g. online
    /// [`timing::SampledCurve`] estimates) use [`SyntsBuilder::new`].
    #[must_use]
    pub fn builder() -> SyntsBuilder<ErrorCurve> {
        SyntsBuilder::new()
    }
}

impl<M: ErrorModel + 'static> Synts<M> {
    /// The configured solver.
    #[must_use]
    pub fn solver(&self) -> &dyn Solver<M> {
        self.solver.as_ref()
    }

    /// The configured weight θ.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The sweep thread pool ([`SyntsBuilder::workers`], or
    /// `SYNTS_THREADS`, or the machine's available parallelism).
    #[must_use]
    pub fn pool(&self) -> ThreadPool {
        self.pool
    }

    /// Solves at the configured θ.
    ///
    /// # Errors
    ///
    /// As [`Solver::solve`].
    pub fn solve(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
    ) -> Result<Assignment, OptError> {
        self.solver.solve(cfg, profiles, self.theta)
    }

    /// Solves and evaluates at the configured θ.
    ///
    /// # Errors
    ///
    /// As [`Solver::solve`].
    pub fn run(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
    ) -> Result<(Assignment, EnergyDelay), OptError> {
        self.solver.solve_evaluated(cfg, profiles, self.theta)
    }

    /// Sweeps the configured solver over `thetas` (a Pareto sweep),
    /// fanning θ points across the configured [`ThreadPool`]. Results are
    /// index-ordered and bit-identical at any worker count.
    ///
    /// # Errors
    ///
    /// As [`Solver::solve`].
    pub fn sweep(
        &self,
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
        thetas: &[f64],
    ) -> Result<Vec<crate::pareto::SweepPoint>, OptError>
    where
        M: Sync,
    {
        crate::pareto::pareto_sweep_pooled(self.solver.as_ref(), cfg, profiles, thetas, self.pool)
    }
}

/// Fluent configuration for [`Synts`].
pub struct SyntsBuilder<M: ErrorModel = ErrorCurve> {
    registry: SolverRegistry<M>,
    scheme: Option<String>,
    theta: f64,
    workers: Option<usize>,
    power_budget: Option<f64>,
    leakage: Option<LeakageModel>,
    thrifty: Option<ThriftyConfig>,
    custom: Option<Arc<dyn Solver<M>>>,
}

impl<M: ErrorModel + 'static> Default for SyntsBuilder<M> {
    fn default() -> SyntsBuilder<M> {
        SyntsBuilder::new()
    }
}

impl<M: ErrorModel + 'static> SyntsBuilder<M> {
    /// A builder over an explicit error model `M`; equivalent to
    /// [`Synts::builder`] when `M` is [`ErrorCurve`].
    #[must_use]
    pub fn new() -> SyntsBuilder<M> {
        SyntsBuilder {
            registry: SolverRegistry::with_defaults(),
            scheme: None,
            theta: 1.0,
            workers: None,
            power_budget: None,
            leakage: None,
            thrifty: None,
            custom: None,
        }
    }

    /// Selects a solver by registry name (default: `"synts_poly"`).
    #[must_use]
    pub fn scheme(mut self, name: impl Into<String>) -> SyntsBuilder<M> {
        self.scheme = Some(name.into());
        self
    }

    /// Sets the energy/time weight θ of Eq 4.4 (default: 1.0).
    #[must_use]
    pub fn theta(mut self, theta: f64) -> SyntsBuilder<M> {
        self.theta = theta;
        self
    }

    /// Sets the sweep worker count (clamped to at least 1). Without an
    /// explicit count the `SYNTS_THREADS` environment variable, then the
    /// machine's available parallelism, decide
    /// ([`crate::parallel::worker_count`]). Sweep results are
    /// bit-identical at any worker count; this knob only trades wall
    /// clock for cores.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> SyntsBuilder<M> {
        self.workers = Some(workers);
        self
    }

    /// Parameterizes the `"power_cap"` solver with an average-power
    /// budget; if no scheme was chosen explicitly, also selects it.
    #[must_use]
    pub fn power_budget(mut self, p_cap: f64) -> SyntsBuilder<M> {
        self.power_budget = Some(p_cap);
        self
    }

    /// Parameterizes the `"synts_leakage"` and `"thrifty"` solvers with a
    /// static-power model; if no scheme was chosen explicitly, selects
    /// the leakage-aware solver.
    #[must_use]
    pub fn leakage(mut self, model: LeakageModel) -> SyntsBuilder<M> {
        self.leakage = Some(model);
        self
    }

    /// Parameterizes the `"thrifty"` solver's sleep hardware; if no
    /// scheme was chosen explicitly, selects the thrifty barrier.
    #[must_use]
    pub fn thrifty(mut self, config: ThriftyConfig) -> SyntsBuilder<M> {
        self.thrifty = Some(config);
        self
    }

    /// Uses a custom solver directly, bypassing the registry.
    #[must_use]
    pub fn solver(mut self, solver: Arc<dyn Solver<M>>) -> SyntsBuilder<M> {
        self.custom = Some(solver);
        self
    }

    /// Replaces the lookup registry (to resolve schemes against a custom
    /// solver set).
    #[must_use]
    pub fn registry(mut self, registry: SolverRegistry<M>) -> SyntsBuilder<M> {
        self.registry = registry;
        self
    }

    /// Resolves the configuration into a ready [`Synts`].
    ///
    /// # Errors
    ///
    /// * [`OptError::UnknownSolver`] if the scheme name is not registered;
    /// * [`OptError::BadConfig`] if a configured parameter cannot be
    ///   honored — a `power_budget`/`leakage`/`thrifty` setting combined
    ///   with an explicit scheme (or custom solver) that ignores it, or
    ///   the `"power_cap"` scheme chosen without a budget. Silently
    ///   dropping a constraint the caller asked for is never an option.
    pub fn build(mut self) -> Result<Synts<M>, OptError> {
        let pool = ThreadPool::new(worker_count(self.workers));
        if let Some(solver) = self.custom {
            if self.power_budget.is_some() || self.leakage.is_some() || self.thrifty.is_some() {
                return Err(OptError::BadConfig(
                    "a custom solver ignores power_budget/leakage/thrifty parameters",
                ));
            }
            return Ok(Synts {
                solver,
                theta: self.theta,
                pool,
            });
        }
        // Fold the extension parameters into the registry entries so a
        // scheme lookup sees the configured variants.
        let leak = self.leakage.unwrap_or_else(LeakageModel::none);
        if let Some(p_cap) = self.power_budget {
            self.registry.register(Arc::new(PowerCap::new(p_cap)));
        }
        if self.leakage.is_some() {
            self.registry.register(Arc::new(Leakage::new(leak)));
        }
        if self.leakage.is_some() || self.thrifty.is_some() {
            let config = self.thrifty.unwrap_or_else(ThriftyConfig::classic);
            self.registry.register(Arc::new(Thrifty::new(leak, config)));
        }
        let scheme = self.scheme.clone().unwrap_or_else(|| {
            // Unnamed scheme: infer the most specific configured solver.
            // Thrifty before leakage: the thrifty solver consumes both
            // parameters, so setting both must resolve to it.
            if self.power_budget.is_some() {
                "power_cap".to_string()
            } else if self.thrifty.is_some() {
                "thrifty".to_string()
            } else if self.leakage.is_some() {
                "synts_leakage".to_string()
            } else {
                "synts_poly".to_string()
            }
        });
        // Reject combinations where a requested parameter would be
        // silently dropped by the resolved scheme.
        if self.power_budget.is_some() && scheme != "power_cap" {
            return Err(OptError::BadConfig(
                "power_budget is only honored by the 'power_cap' scheme",
            ));
        }
        if self.power_budget.is_none() && scheme == "power_cap" {
            return Err(OptError::BadConfig(
                "the 'power_cap' scheme requires a power_budget",
            ));
        }
        if self.leakage.is_some() && !matches!(scheme.as_str(), "synts_leakage" | "thrifty") {
            return Err(OptError::BadConfig(
                "leakage is only honored by the 'synts_leakage' and 'thrifty' schemes",
            ));
        }
        if self.thrifty.is_some() && scheme != "thrifty" {
            return Err(OptError::BadConfig(
                "a thrifty config is only honored by the 'thrifty' scheme",
            ));
        }
        let solver = self.registry.get(&scheme)?;
        Ok(Synts {
            solver,
            theta: self.theta,
            pool,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::weighted_cost;
    use timing::ErrorCurve;

    fn curve(lo: f64, hi: f64) -> ErrorCurve {
        let delays: Vec<f64> = (0..128)
            .map(|i| lo + (hi - lo) * i as f64 / 128.0)
            .collect();
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_instance() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.82, 1.0];
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
            ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
            ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn default_registry_holds_every_scheme() {
        let reg: SolverRegistry = SolverRegistry::with_defaults();
        let names: Vec<&str> = reg.names().collect();
        for expected in [
            "nominal",
            "no_ts",
            "per_core_ts",
            "power_cap",
            "synts_exhaustive",
            "synts_leakage",
            "synts_milp",
            "synts_poly",
            "thrifty",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert_eq!(reg.len(), 9);
    }

    #[test]
    fn every_registered_solver_solves_and_respects_the_optimum() {
        let (cfg, profiles) = small_instance();
        let theta = 1.0;
        let reg: SolverRegistry = SolverRegistry::with_defaults();
        let optimum = {
            let a = Exhaustive
                .solve(&cfg, &profiles, theta)
                .expect("exhaustive");
            weighted_cost(&cfg, &profiles, &a, theta)
        };
        for (name, solver) in reg.iter() {
            let a = solver.solve(&cfg, &profiles, theta).expect(name);
            assert_eq!(a.len(), profiles.len(), "{name}: one point per thread");
            let c = weighted_cost(&cfg, &profiles, &a, theta);
            // The exhaustive optimum lower-bounds every assignment.
            assert!(
                c >= optimum * (1.0 - 1e-9),
                "{name}: cost {c} beats the optimum {optimum}"
            );
            if solver.capabilities().exact
                && solver.capabilities().objective == Objective::WeightedEnergyTime
            {
                assert!(
                    (c - optimum).abs() <= 1e-9 * optimum.max(1.0),
                    "{name}: exact solver off the optimum: {c} vs {optimum}"
                );
            }
        }
    }

    #[test]
    fn builder_defaults_to_poly() {
        let (cfg, profiles) = small_instance();
        let synts: Synts = Synts::builder().theta(2.0).build().expect("builds");
        assert_eq!(synts.solver().name(), "synts_poly");
        assert!((synts.theta() - 2.0).abs() < 1e-12);
        let a = synts.solve(&cfg, &profiles).expect("solves");
        let b = synts_poly(&cfg, &profiles, 2.0).expect("solves");
        assert_eq!(a, b);
    }

    #[test]
    fn builder_power_budget_selects_and_parameterizes_power_cap() {
        let (cfg, profiles) = small_instance();
        let nominal_power = {
            let a = baselines::nominal(&cfg, &profiles).expect("ok");
            let ed = evaluate(&cfg, &profiles, &a);
            ed.energy / ed.time
        };
        let synts: Synts = Synts::builder()
            .power_budget(nominal_power)
            .build()
            .expect("builds");
        assert_eq!(synts.solver().name(), "power_cap");
        let a = synts.solve(&cfg, &profiles).expect("feasible");
        let ed = evaluate(&cfg, &profiles, &a);
        assert!(ed.energy / ed.time <= nominal_power * (1.0 + 1e-9));
    }

    #[test]
    fn builder_leakage_selects_leakage_solver() {
        let (cfg, profiles) = small_instance();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let synts: Synts = Synts::builder()
            .leakage(leak)
            .theta(1.0)
            .build()
            .expect("builds");
        assert_eq!(synts.solver().name(), "synts_leakage");
        let a = synts.solve(&cfg, &profiles).expect("solves");
        let b = synts_poly_leakage(&cfg, &profiles, 1.0, &leak).expect("solves");
        assert_eq!(a, b);
    }

    #[test]
    fn builder_explicit_scheme_wins_over_parameter_inference() {
        let (cfg, profiles) = small_instance();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let synts: Synts = Synts::builder()
            .scheme("thrifty")
            .leakage(leak)
            .build()
            .expect("builds");
        assert_eq!(synts.solver().name(), "thrifty");
        // The thrifty solver inherited the configured leakage model: the
        // solve still yields the uniform nominal policy assignment.
        let a = synts.solve(&cfg, &profiles).expect("solves");
        assert!(a.points.iter().all(|p| p.voltage_idx == 0));
    }

    #[test]
    fn builder_leakage_plus_thrifty_infers_the_thrifty_solver() {
        // The thrifty solver consumes both parameters; configuring both
        // without a named scheme must resolve to it, not error.
        let (cfg, profiles) = small_instance();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let synts = Synts::builder()
            .leakage(leak)
            .thrifty(ThriftyConfig::classic())
            .build()
            .expect("self-consistent combination");
        assert_eq!(synts.solver().name(), "thrifty");
        let a = synts.solve(&cfg, &profiles).expect("solves");
        assert_eq!(a.len(), profiles.len());
    }

    #[test]
    fn default_solver_covers_exactly_the_listed_names() {
        for name in DEFAULT_SOLVER_NAMES {
            let solver = default_solver::<ErrorCurve>(name).expect("constructible");
            assert_eq!(solver.name(), name);
        }
        assert!(default_solver::<ErrorCurve>("unknown").is_none());
        let reg: SolverRegistry = SolverRegistry::with_defaults();
        assert_eq!(reg.len(), DEFAULT_SOLVER_NAMES.len());
    }

    #[test]
    fn builder_rejects_parameters_the_scheme_would_drop() {
        // power_budget with a scheme that ignores it.
        let err = Synts::builder()
            .scheme("synts_poly")
            .power_budget(2.0)
            .build()
            .expect_err("budget would be silently dropped");
        assert!(matches!(err, OptError::BadConfig(_)), "{err}");
        // power_cap without a budget: the 1e30 sentinel is not a cap.
        let err = Synts::builder()
            .scheme("power_cap")
            .build()
            .expect_err("cap scheme without a budget");
        assert!(matches!(err, OptError::BadConfig(_)), "{err}");
        // leakage with a scheme that ignores it.
        let err = Synts::builder()
            .scheme("per_core_ts")
            .leakage(LeakageModel::none())
            .build()
            .expect_err("leakage would be silently dropped");
        assert!(matches!(err, OptError::BadConfig(_)), "{err}");
        // A custom solver cannot honor builder parameters either.
        let err = Synts::builder()
            .solver(Arc::new(Poly))
            .power_budget(2.0)
            .build()
            .expect_err("custom solver ignores parameters");
        assert!(matches!(err, OptError::BadConfig(_)), "{err}");
    }

    #[test]
    fn builder_rejects_unknown_scheme() {
        let err = Synts::<ErrorCurve>::builder()
            .scheme("simulated_annealing")
            .build()
            .expect_err("unknown");
        assert!(
            matches!(err, OptError::UnknownSolver { ref name, .. } if name == "simulated_annealing")
        );
        let msg = err.to_string();
        assert!(msg.contains("simulated_annealing"), "{msg}");
        // The error teaches: every registered key is listed.
        for known in DEFAULT_SOLVER_NAMES {
            assert!(msg.contains(known), "{msg} should list {known}");
        }
    }

    #[test]
    fn capabilities_distinguish_solver_classes() {
        let poly = <Poly as Solver<ErrorCurve>>::capabilities(&Poly);
        assert!(poly.exact && poly.polynomial && poly.uses_theta && poly.speculates);
        let milp = <Milp as Solver<ErrorCurve>>::capabilities(&Milp::default());
        assert!(milp.exact && !milp.polynomial);
        let nominal = <Nominal as Solver<ErrorCurve>>::capabilities(&Nominal);
        assert_eq!(nominal.objective, Objective::Policy);
        assert!(!nominal.uses_theta && !nominal.speculates);
        let cap = <PowerCap as Solver<ErrorCurve>>::capabilities(&PowerCap::uncapped());
        assert_eq!(cap.objective, Objective::TimeUnderPowerCap);
    }

    #[test]
    fn registry_register_displaces_same_name() {
        let mut reg: SolverRegistry = SolverRegistry::empty();
        assert!(reg.is_empty());
        assert!(reg.register(Arc::new(PowerCap::uncapped())).is_none());
        let displaced = reg.register(Arc::new(PowerCap::new(42.0))).expect("old");
        assert_eq!(displaced.name(), "power_cap");
        assert_eq!(reg.len(), 1);
    }
}
