//! Power-constrained SynTS — the paper's suggested generalization.
//!
//! Sec 4.1 closes with: "although the focus of this thesis is for
//! exploring the energy versus execution time trade-offs, the proposed
//! approach can be generalized to address power consumption as well."
//! This module is that generalization: minimize the barrier execution
//! time subject to a cap on the chip's *average power* over the interval,
//!
//! ```text
//! min  t_exec      s.t.  Σ_i en_i / t_exec ≤ P_cap
//! ```
//!
//! The same enumeration that makes Algorithm 1 exact works here. Each
//! candidate (critical thread, voltage, TSR) pins `t_exec`; given
//! `t_exec`, the assignment that minimizes total energy — per-thread
//! `minEnergy` under the deadline — also minimizes average power, so a
//! candidate is feasible iff its energy-minimal completion satisfies the
//! cap. Among feasible candidates the smallest `t_exec` is optimal
//! (ties broken toward lower energy). Certified against the exhaustive
//! reference in the tests.

use serde::{Deserialize, Serialize};
use timing::ErrorModel;

use crate::error::OptError;
use crate::exhaustive::EXHAUSTIVE_LIMIT;
use crate::model::{evaluate, Assignment, OperatingPoint, SystemConfig, ThreadProfile};
use crate::poly::Tables;

/// An optimal power-capped operating decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCappedSolution {
    /// The chosen per-thread operating points.
    pub assignment: Assignment,
    /// Barrier execution time of the chosen assignment (Eq 4.2).
    pub time: f64,
    /// Total interval energy of the chosen assignment.
    pub energy: f64,
    /// Average power `energy / time` — guaranteed ≤ the requested cap.
    pub avg_power: f64,
}

/// Minimizes barrier time subject to an average-power cap, exactly, in
/// `O(M²Q²S²)` time.
///
/// # Errors
///
/// * [`OptError::BadConfig`] for a malformed config or a cap that is not
///   finite and positive;
/// * [`OptError::NoThreads`] if `profiles` is empty;
/// * [`OptError::Infeasible`] if no assignment meets the cap (the cap is
///   below even the most frugal configuration's average power).
pub fn synts_poly_power_capped<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    p_cap: f64,
) -> Result<PowerCappedSolution, OptError> {
    cfg.validate()?;
    if !p_cap.is_finite() || p_cap <= 0.0 {
        return Err(OptError::BadConfig("power cap must be finite and > 0"));
    }
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let t = Tables::build(cfg, profiles);
    let mut best: Option<(f64, f64, Assignment)> = None; // (time, energy, points)
    let mut points = vec![
        OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 0
        };
        t.m
    ];
    for i in 0..t.m {
        for j in 0..t.q {
            for k in 0..t.s {
                let idx = j * t.s + k;
                let texec = t.time[i][idx];
                let mut en = t.energy[i][idx];
                points[i] = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                let mut feasible = true;
                for l in 0..t.m {
                    if l == i {
                        continue;
                    }
                    match t.min_energy(l, texec) {
                        Some((e, p)) => {
                            en += e;
                            points[l] = p;
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if !feasible || en > p_cap * texec * (1.0 + 1e-12) {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bt, be, _)) => {
                        texec < bt * (1.0 - 1e-12)
                            || ((texec - bt).abs() <= 1e-12 * bt.max(1.0) && en < *be)
                    }
                };
                if better {
                    best = Some((
                        texec,
                        en,
                        Assignment {
                            points: points.clone(),
                        },
                    ));
                }
            }
        }
    }
    match best {
        Some((time, energy, assignment)) => Ok(PowerCappedSolution {
            avg_power: energy / time,
            assignment,
            time,
            energy,
        }),
        None => Err(OptError::Infeasible),
    }
}

/// Exhaustive reference for the power-capped problem (certification only).
///
/// # Errors
///
/// As [`synts_poly_power_capped`], plus [`OptError::TooLarge`] beyond the
/// exhaustive candidate cap.
pub fn synts_exhaustive_power_capped<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    p_cap: f64,
) -> Result<PowerCappedSolution, OptError> {
    cfg.validate()?;
    if !p_cap.is_finite() || p_cap <= 0.0 {
        return Err(OptError::BadConfig("power cap must be finite and > 0"));
    }
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let per_thread = (cfg.q() * cfg.s()) as u128;
    let m = profiles.len();
    let candidates = per_thread.checked_pow(m as u32).unwrap_or(u128::MAX);
    if candidates > EXHAUSTIVE_LIMIT {
        return Err(OptError::TooLarge {
            candidates,
            limit: EXHAUSTIVE_LIMIT,
        });
    }
    let s = cfg.s();
    let n_points = cfg.q() * s;
    let mut best: Option<(f64, f64, Vec<usize>)> = None;
    let mut combo = vec![0usize; m];
    loop {
        let assignment = Assignment {
            points: combo
                .iter()
                .map(|&idx| OperatingPoint {
                    voltage_idx: idx / s,
                    tsr_idx: idx % s,
                })
                .collect(),
        };
        let ed = evaluate(cfg, profiles, &assignment);
        if ed.energy <= p_cap * ed.time * (1.0 + 1e-12) {
            let better = match &best {
                None => true,
                Some((bt, be, _)) => {
                    ed.time < bt * (1.0 - 1e-12)
                        || ((ed.time - bt).abs() <= 1e-12 * bt.max(1.0) && ed.energy < *be)
                }
            };
            if better {
                best = Some((ed.time, ed.energy, combo.clone()));
            }
        }
        let mut pos = 0;
        loop {
            if pos == m {
                return match best {
                    Some((time, energy, c)) => Ok(PowerCappedSolution {
                        avg_power: energy / time,
                        assignment: Assignment {
                            points: c
                                .iter()
                                .map(|&idx| OperatingPoint {
                                    voltage_idx: idx / s,
                                    tsr_idx: idx % s,
                                })
                                .collect(),
                        },
                        time,
                        energy,
                    }),
                    None => Err(OptError::Infeasible),
                };
            }
            combo[pos] += 1;
            if combo[pos] < n_points {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::ErrorCurve;

    fn curve(lo: f64, hi: f64) -> ErrorCurve {
        let delays: Vec<f64> = (0..200)
            .map(|i| lo + (hi - lo) * i as f64 / 200.0)
            .collect();
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_instance() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.82, 1.0];
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
            ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
            ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
        ];
        (cfg, profiles)
    }

    /// Loosest cap that is still binding somewhere in the design space.
    fn nominal_power(cfg: &SystemConfig, profiles: &[ThreadProfile<ErrorCurve>]) -> f64 {
        let nominal = Assignment::uniform(
            profiles.len(),
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: cfg.s() - 1,
            },
        );
        let ed = evaluate(cfg, profiles, &nominal);
        ed.energy / ed.time
    }

    #[test]
    fn poly_matches_exhaustive_across_caps() {
        let (cfg, profiles) = small_instance();
        let p_nom = nominal_power(&cfg, &profiles);
        for scale in [0.5, 0.8, 1.0, 1.5, 3.0] {
            let cap = p_nom * scale;
            let poly = synts_poly_power_capped(&cfg, &profiles, cap);
            let ex = synts_exhaustive_power_capped(&cfg, &profiles, cap);
            match (poly, ex) {
                (Ok(p), Ok(e)) => {
                    assert!(
                        (p.time - e.time).abs() <= 1e-9 * e.time.max(1.0),
                        "cap ×{scale}: poly time {} vs exhaustive {}",
                        p.time,
                        e.time
                    );
                    assert!(p.avg_power <= cap * (1.0 + 1e-9));
                }
                (Err(OptError::Infeasible), Err(OptError::Infeasible)) => {}
                (p, e) => panic!("solvers disagree at cap ×{scale}: {p:?} vs {e:?}"),
            }
        }
    }

    #[test]
    fn looser_cap_never_slows_the_barrier() {
        let (cfg, profiles) = small_instance();
        let p_nom = nominal_power(&cfg, &profiles);
        let mut prev_time = f64::INFINITY;
        for scale in [0.6, 0.8, 1.0, 1.4, 2.0, 4.0] {
            if let Ok(sol) = synts_poly_power_capped(&cfg, &profiles, p_nom * scale) {
                assert!(
                    sol.time <= prev_time * (1.0 + 1e-12),
                    "loosening the cap must not slow execution"
                );
                prev_time = sol.time;
            }
        }
    }

    #[test]
    fn unbounded_cap_recovers_pure_speed_optimum() {
        let (cfg, profiles) = small_instance();
        let sol = synts_poly_power_capped(&cfg, &profiles, 1e18).expect("feasible");
        // With no effective cap, the time must equal the theta→inf optimum.
        let fast = crate::poly::synts_poly(&cfg, &profiles, 1e15).expect("poly");
        let ed = evaluate(&cfg, &profiles, &fast);
        assert!((sol.time - ed.time).abs() <= 1e-9 * ed.time);
    }

    #[test]
    fn impossibly_tight_cap_is_infeasible() {
        let (cfg, profiles) = small_instance();
        assert_eq!(
            synts_poly_power_capped(&cfg, &profiles, 1e-15).expect_err("infeasible"),
            OptError::Infeasible
        );
    }

    #[test]
    fn rejects_bad_caps_and_inputs() {
        let (cfg, profiles) = small_instance();
        assert!(matches!(
            synts_poly_power_capped(&cfg, &profiles, f64::NAN).expect_err("nan"),
            OptError::BadConfig(_)
        ));
        assert!(matches!(
            synts_poly_power_capped(&cfg, &profiles, -1.0).expect_err("negative"),
            OptError::BadConfig(_)
        ));
        let empty: Vec<ThreadProfile<ErrorCurve>> = Vec::new();
        assert_eq!(
            synts_poly_power_capped(&cfg, &empty, 1.0).expect_err("no threads"),
            OptError::NoThreads
        );
    }

    #[test]
    fn binding_cap_trades_time_for_power() {
        let (cfg, profiles) = small_instance();
        let p_nom = nominal_power(&cfg, &profiles);
        let loose = synts_poly_power_capped(&cfg, &profiles, p_nom * 4.0).expect("ok");
        let tight = synts_poly_power_capped(&cfg, &profiles, p_nom * 0.7).expect("ok");
        assert!(tight.time >= loose.time);
        assert!(tight.avg_power <= p_nom * 0.7 * (1.0 + 1e-9));
    }

    #[test]
    fn reported_metrics_are_consistent() {
        let (cfg, profiles) = small_instance();
        let p_nom = nominal_power(&cfg, &profiles);
        let sol = synts_poly_power_capped(&cfg, &profiles, p_nom).expect("ok");
        let ed = evaluate(&cfg, &profiles, &sol.assignment);
        assert!((sol.time - ed.time).abs() < 1e-12 * ed.time.max(1.0));
        assert!((sol.energy - ed.energy).abs() < 1e-12 * ed.energy.max(1.0));
        assert!((sol.avg_power - ed.energy / ed.time).abs() < 1e-12);
    }
}
