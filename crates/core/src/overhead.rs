//! Hardware overhead model for SynTS-online (paper Sec 6.3).
//!
//! The paper synthesizes the IVM pipe stages with a 45 nm FreePDK library
//! and reports the added hardware — Razor shadow latches on the protected
//! pipeline registers, per-core sampling counters, and the interval
//! controller — at ≈ 3.41% core power and ≈ 2.7% core area. We rebuild the
//! same accounting over our own cell library: both numerator (added cells)
//! and denominator (core cells) come from the same normalized units, so the
//! ratios are library-consistent.

use gatelib::{Netlist, NetlistStats};
use serde::{Deserialize, Serialize};

/// Normalized area of a standard D flip-flop (INV = 1.0).
const DFF_AREA: f64 = 6.0;
/// Normalized per-cycle energy of a clocked flip-flop.
const DFF_ENERGY: f64 = 4.0;
/// Extra area of a Razor flip-flop over a standard one: shadow latch,
/// delayed-clock XOR comparator and restore mux (Fig 1.1).
const RAZOR_EXTRA_AREA: f64 = 9.0;
/// Extra per-cycle energy of a Razor flip-flop. The shadow latch and its
/// delayed clock toggle every cycle whether or not an error occurs, so the
/// energy premium is proportionally larger than the area premium — the
/// reason the paper's power overhead (3.41%) exceeds its area overhead
/// (2.7%).
const RAZOR_EXTRA_ENERGY: f64 = 8.0;
/// Fraction of a stage's pipeline registers that need Razor protection —
/// only near-critical endpoints are shadowed (Razor's standard sizing).
const RAZOR_COVERAGE: f64 = 0.15;
/// Sampling counters per core: one error counter + one instruction counter.
const COUNTER_BITS: usize = 2 * 18;
/// Controller (per-core share): comparator tree + FSM, in NAND2
/// equivalents. The SynTS-Poly search itself runs in firmware; only the
/// level sequencing and counter snapshot logic is dedicated hardware.
const CONTROLLER_NAND2_EQUIV: f64 = 100.0;
/// Average combinational switching activity (toggles per cell per cycle).
const COMB_ACTIVITY: f64 = 0.12;
/// Fraction of total core area occupied by the three analyzed pipe stages
/// and their registers (the rest is fetch, rename, LSQ, caches...).
const STAGE_FRACTION_OF_CORE: f64 = 0.22;
/// Duty cycle of the controller/counters (active during sampling ≈ 10% of
/// each interval).
const SAMPLING_DUTY: f64 = 0.10;

/// Itemized overhead report, relative to the core (Sec 6.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Core area in normalized units (stage netlists scaled to a full core).
    pub core_area: f64,
    /// Core dynamic energy per cycle, same units.
    pub core_energy_per_cycle: f64,
    /// Added area: Razor flip-flops.
    pub razor_area: f64,
    /// Added area: sampling counters.
    pub counter_area: f64,
    /// Added area: the SynTS interval controller.
    pub controller_area: f64,
    /// Added per-cycle energy (all additions, duty-cycle weighted).
    pub added_energy_per_cycle: f64,
    /// Area overhead as a fraction of core area.
    pub area_fraction: f64,
    /// Power overhead as a fraction of core power.
    pub power_fraction: f64,
}

impl OverheadReport {
    /// Area overhead in percent.
    #[must_use]
    pub fn area_pct(&self) -> f64 {
        self.area_fraction * 100.0
    }

    /// Power overhead in percent.
    #[must_use]
    pub fn power_pct(&self) -> f64 {
        self.power_fraction * 100.0
    }
}

/// Estimates SynTS-online's hardware overhead from the analyzed stage
/// netlists (Decode, SimpleALU, ComplexALU of one core).
///
/// # Panics
///
/// Panics if `stages` is empty — there is nothing to scale a core from.
#[must_use]
pub fn estimate_overhead(stages: &[&Netlist]) -> OverheadReport {
    assert!(!stages.is_empty(), "need at least one stage netlist");
    let mut comb_area = 0.0;
    let mut comb_energy = 0.0;
    let mut ff_count = 0usize;
    for stage in stages {
        let stats = NetlistStats::of(stage);
        comb_area += stats.total_area;
        comb_energy += stats.max_switch_energy * COMB_ACTIVITY;
        // Every stage output is latched in a pipeline register.
        ff_count += stats.outputs;
    }
    let stage_area = comb_area + ff_count as f64 * DFF_AREA;
    let stage_energy = comb_energy + ff_count as f64 * DFF_ENERGY;
    let core_area = stage_area / STAGE_FRACTION_OF_CORE;
    let core_energy = stage_energy / STAGE_FRACTION_OF_CORE;

    let protected = (ff_count as f64 * RAZOR_COVERAGE).ceil();
    let razor_area = protected * RAZOR_EXTRA_AREA;
    let razor_energy = protected * RAZOR_EXTRA_ENERGY;

    let counter_area = COUNTER_BITS as f64 * DFF_AREA;
    let counter_energy = COUNTER_BITS as f64 * DFF_ENERGY * SAMPLING_DUTY;

    let nand2_area = gatelib::CellKind::Nand2.params().area;
    let nand2_energy = gatelib::CellKind::Nand2.params().switch_energy;
    let controller_area = CONTROLLER_NAND2_EQUIV * nand2_area;
    let controller_energy = CONTROLLER_NAND2_EQUIV * nand2_energy * COMB_ACTIVITY * SAMPLING_DUTY;

    let added_area = razor_area + counter_area + controller_area;
    let added_energy = razor_energy + counter_energy + controller_energy;

    OverheadReport {
        core_area,
        core_energy_per_cycle: core_energy,
        razor_area,
        counter_area,
        controller_area,
        added_energy_per_cycle: added_energy,
        area_fraction: added_area / core_area,
        power_fraction: added_energy / core_energy,
    }
}

/// Convenience wrapper: builds the three default stage netlists at `width`
/// and estimates the overhead over them — what `repro sec-6-3` reports.
///
/// # Errors
///
/// Propagates netlist construction failures as [`crate::OptError::Timing`].
pub fn estimate_overhead_defaults(width: usize) -> Result<OverheadReport, crate::OptError> {
    let mut stages = Vec::new();
    for kind in circuits::StageKind::ALL {
        let stage = circuits::build_stage(kind, width).map_err(timing::TimingError::from)?;
        stages.push(stage.netlist().clone());
    }
    let refs: Vec<&Netlist> = stages.iter().collect();
    Ok(estimate_overhead(&refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{build_stage, StageKind};

    fn stage_netlists(width: usize) -> Vec<Netlist> {
        StageKind::ALL
            .iter()
            .map(|&k| build_stage(k, width).expect("build").netlist().clone())
            .collect()
    }

    #[test]
    fn overhead_in_paper_ballpark() {
        let stages = stage_netlists(16);
        let refs: Vec<&Netlist> = stages.iter().collect();
        let report = estimate_overhead(&refs);
        // Paper: 2.7% area, 3.41% power. We assert the single-digit band
        // rather than the exact figures (different library, different core).
        assert!(
            report.area_pct() > 0.5 && report.area_pct() < 8.0,
            "area overhead {}%",
            report.area_pct()
        );
        assert!(
            report.power_pct() > 0.5 && report.power_pct() < 10.0,
            "power overhead {}%",
            report.power_pct()
        );
    }

    #[test]
    fn power_overhead_exceeds_area_overhead() {
        // The paper found power (3.41%) > area (2.7%): Razor's shadow
        // latches clock every cycle, so they cost proportionally more in
        // power than in area.
        let stages = stage_netlists(16);
        let refs: Vec<&Netlist> = stages.iter().collect();
        let report = estimate_overhead(&refs);
        assert!(
            report.power_fraction > report.area_fraction,
            "power {} vs area {}",
            report.power_fraction,
            report.area_fraction
        );
    }

    #[test]
    fn report_components_sum() {
        let stages = stage_netlists(8);
        let refs: Vec<&Netlist> = stages.iter().collect();
        let r = estimate_overhead(&refs);
        let total = r.razor_area + r.counter_area + r.controller_area;
        assert!((r.area_fraction - total / r.core_area).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_list_panics() {
        let _ = estimate_overhead(&[]);
    }
}
