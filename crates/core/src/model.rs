//! The SynTS system model (paper Sec 4.1): discrete voltage/TSR levels,
//! per-thread workload profiles, and the performance/energy equations
//! 4.1–4.3 that everything else optimizes.

use serde::{Deserialize, Serialize};
use timing::{ErrorModel, Voltage, VoltageTable};

use crate::error::OptError;

/// Razor's pipeline flush-and-replay penalty in cycles (Sec 4.1, after
/// Eq 4.1, citing the Razor processor).
pub const RAZOR_PENALTY_CYCLES: f64 = 5.0;

/// Static system parameters: the sets `V` and `R`, the stage's nominal
/// period, the recovery penalty and the switching-capacitance scalar α.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Available voltage levels (the paper's `V`, `Q` entries).
    pub voltages: VoltageTable,
    /// Available timing-speculation ratios, ascending, last entry = 1.0
    /// (the paper's `R`, `S` entries).
    pub tsr_levels: Vec<f64>,
    /// Stage nominal clock period at 1.0 V (STA critical path).
    pub tnom_v1: f64,
    /// Error-recovery penalty in cycles (`C_penalty`).
    pub c_penalty: f64,
    /// Average switching capacitance scalar (`α` in Eq 4.3).
    pub alpha: f64,
}

impl SystemConfig {
    /// The paper's experimental configuration (Sec 6.2): Table 5.1 voltages
    /// and six TSR levels evenly spaced in `[0.64, 1.0]`.
    #[must_use]
    pub fn paper_default(tnom_v1: f64) -> SystemConfig {
        let tsr_levels = (0..6).map(|k| 0.64 + 0.072 * k as f64).collect();
        SystemConfig {
            voltages: VoltageTable::ptm22(),
            tsr_levels,
            tnom_v1,
            c_penalty: RAZOR_PENALTY_CYCLES,
            alpha: 1.0,
        }
    }

    /// Validates internal consistency (levels present, TSRs ascending in
    /// `(0, 1]` and ending at 1.0, positive period).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::BadConfig`] describing the first violation.
    // `!(x > 0)` rather than `x <= 0`: must also reject NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), OptError> {
        if self.voltages.is_empty() {
            return Err(OptError::BadConfig("no voltage levels"));
        }
        if self.tsr_levels.is_empty() {
            return Err(OptError::BadConfig("no TSR levels"));
        }
        for w in self.tsr_levels.windows(2) {
            if w[0] >= w[1] {
                return Err(OptError::BadConfig("TSR levels must be ascending"));
            }
        }
        let first = self.tsr_levels[0];
        let last = *self.tsr_levels.last().expect("checked non-empty");
        if first <= 0.0 || (last - 1.0).abs() > 1e-12 {
            return Err(OptError::BadConfig(
                "TSR levels must lie in (0, 1] and include 1.0",
            ));
        }
        if !(self.tnom_v1 > 0.0) {
            return Err(OptError::BadConfig("nominal period must be positive"));
        }
        if self.c_penalty < 0.0 || self.alpha <= 0.0 {
            return Err(OptError::BadConfig("penalty/alpha out of range"));
        }
        Ok(())
    }

    /// Number of voltage levels (`Q`).
    #[must_use]
    pub fn q(&self) -> usize {
        self.voltages.len()
    }

    /// Number of TSR levels (`S`).
    #[must_use]
    pub fn s(&self) -> usize {
        self.tsr_levels.len()
    }

    /// Nominal clock period at voltage `v`: `t_nom(V)`.
    #[must_use]
    pub fn tnom(&self, v: Voltage) -> f64 {
        self.tnom_v1 * v.delay_scale()
    }

    /// Speculative clock period for `(voltage index, TSR index)`:
    /// `t_clk = r · t_nom(V)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn tclk(&self, voltage_idx: usize, tsr_idx: usize) -> f64 {
        let v = self.voltages.levels()[voltage_idx];
        self.tsr_levels[tsr_idx] * self.tnom(v)
    }
}

/// Per-thread workload profile for one barrier interval: instruction count
/// `N_i`, error-free CPI, and the thread's error model `err_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadProfile<M> {
    /// Instructions the thread executes in the interval (`N_i`).
    pub instructions: f64,
    /// Error-free clocks per instruction (`CPI_base_i`).
    pub cpi_base: f64,
    /// The thread's error-probability model.
    pub err: M,
}

impl<M: ErrorModel> ThreadProfile<M> {
    /// Creates a profile.
    #[must_use]
    pub fn new(instructions: f64, cpi_base: f64, err: M) -> ThreadProfile<M> {
        ThreadProfile {
            instructions,
            cpi_base,
            err,
        }
    }

    /// Cycles the thread consumes at error probability `p` (Eq 4.1 inner
    /// term times `N_i`): `N (p·C_penalty + CPI_base)`.
    #[must_use]
    pub fn cycles(&self, p_err: f64, c_penalty: f64) -> f64 {
        self.instructions * (p_err * c_penalty + self.cpi_base)
    }
}

/// One thread's chosen operating point: indices into the config's voltage
/// and TSR tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Index into [`SystemConfig::voltages`].
    pub voltage_idx: usize,
    /// Index into [`SystemConfig::tsr_levels`].
    pub tsr_idx: usize,
}

/// A complete per-thread operating-point assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// One operating point per thread.
    pub points: Vec<OperatingPoint>,
}

impl Assignment {
    /// Uniform assignment: every thread at the same point.
    #[must_use]
    pub fn uniform(threads: usize, point: OperatingPoint) -> Assignment {
        Assignment {
            points: vec![point; threads],
        }
    }

    /// Number of threads covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the assignment covers no threads.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Execution time of one thread at an operating point (Eq 4.1 × `N_i`).
#[must_use]
pub fn thread_time<M: ErrorModel>(
    cfg: &SystemConfig,
    profile: &ThreadProfile<M>,
    point: OperatingPoint,
) -> f64 {
    let r = cfg.tsr_levels[point.tsr_idx];
    let p = profile.err.err(r);
    cfg.tclk(point.voltage_idx, point.tsr_idx) * profile.cycles(p, cfg.c_penalty)
}

/// Energy of one thread at an operating point (Eq 4.3).
#[must_use]
pub fn thread_energy<M: ErrorModel>(
    cfg: &SystemConfig,
    profile: &ThreadProfile<M>,
    point: OperatingPoint,
) -> f64 {
    let r = cfg.tsr_levels[point.tsr_idx];
    let p = profile.err.err(r);
    let v = cfg.voltages.levels()[point.voltage_idx];
    cfg.alpha * v.energy_scale() * profile.cycles(p, cfg.c_penalty)
}

/// Evaluates a complete assignment: total energy (Σ Eq 4.3) and barrier
/// execution time (Eq 4.2).
///
/// # Panics
///
/// Panics if the assignment covers a different number of threads than
/// `profiles`.
#[must_use]
pub fn evaluate<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    assignment: &Assignment,
) -> timing::EnergyDelay {
    assert_eq!(
        profiles.len(),
        assignment.len(),
        "assignment/profile thread counts differ"
    );
    let mut energy = 0.0;
    let mut time: f64 = 0.0;
    for (profile, &point) in profiles.iter().zip(&assignment.points) {
        energy += thread_energy(cfg, profile, point);
        time = time.max(thread_time(cfg, profile, point));
    }
    timing::EnergyDelay::new(energy, time)
}

/// The weighted objective of SynTS-OPT (Eq 4.4): `Σ en_i + θ·t_exec`.
#[must_use]
pub fn weighted_cost<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    assignment: &Assignment,
    theta: f64,
) -> f64 {
    let ed = evaluate(cfg, profiles, assignment);
    ed.energy + theta * ed.time
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::ErrorCurve;

    fn flat_curve(norm_delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(norm_delays).expect("non-empty")
    }

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default(100.0)
    }

    #[test]
    fn paper_default_is_valid() {
        let c = cfg();
        c.validate().expect("valid");
        assert_eq!(c.q(), 7);
        assert_eq!(c.s(), 6);
        assert!((c.tsr_levels[0] - 0.64).abs() < 1e-12);
        assert!((c.tsr_levels[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = cfg();
        c.tsr_levels = vec![0.9, 0.8, 1.0];
        assert!(c.validate().is_err(), "non-ascending TSRs");
        let mut c = cfg();
        c.tsr_levels = vec![0.5, 0.9];
        assert!(c.validate().is_err(), "missing r = 1");
        let mut c = cfg();
        c.tnom_v1 = 0.0;
        assert!(c.validate().is_err(), "zero period");
    }

    #[test]
    fn tclk_combines_table_and_ratio() {
        let c = cfg();
        // Voltage index 3 = 0.80 V (×1.39), TSR index 5 = 1.0.
        assert!((c.tclk(3, 5) - 139.0).abs() < 1e-9);
        // TSR index 0 = 0.64.
        assert!((c.tclk(0, 0) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn eq_4_1_to_4_3_hand_check() {
        let c = cfg();
        // Thread: N = 1000, CPI = 1.5, all delays at 0.7 of tnom.
        let prof = ThreadProfile::new(1000.0, 1.5, flat_curve(vec![0.7; 100]));
        // At r = 1.0: p = 0 -> time = tclk * N * CPI.
        let nominal = OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 5,
        };
        let t = thread_time(&c, &prof, nominal);
        assert!((t - 100.0 * 1000.0 * 1.5).abs() < 1e-6);
        let e = thread_energy(&c, &prof, nominal);
        assert!((e - 1.0 * 1000.0 * 1.5).abs() < 1e-9);
        // At r = 0.64 every instruction errs: p = 1.
        let fast = OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 0,
        };
        let cycles = 1000.0 * (1.0 * 5.0 + 1.5);
        let t = thread_time(&c, &prof, fast);
        assert!((t - 64.0 * cycles).abs() < 1e-6);
    }

    #[test]
    fn energy_scales_with_v_squared() {
        let c = cfg();
        let prof = ThreadProfile::new(100.0, 1.0, flat_curve(vec![0.0; 10]));
        let hi = thread_energy(
            &c,
            &prof,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 5,
            },
        );
        let lo = thread_energy(
            &c,
            &prof,
            OperatingPoint {
                voltage_idx: 3, // 0.8 V
                tsr_idx: 5,
            },
        );
        assert!((lo / hi - 0.64).abs() < 1e-12);
    }

    #[test]
    fn evaluate_takes_max_time_sum_energy() {
        let c = cfg();
        let fast_thread = ThreadProfile::new(100.0, 1.0, flat_curve(vec![0.1; 10]));
        let slow_thread = ThreadProfile::new(1000.0, 2.0, flat_curve(vec![0.1; 10]));
        let a = Assignment::uniform(
            2,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 5,
            },
        );
        let ed = evaluate(&c, &[fast_thread.clone(), slow_thread.clone()], &a);
        let t_slow = thread_time(&c, &slow_thread, a.points[1]);
        assert!((ed.time - t_slow).abs() < 1e-9, "time is the max");
        let e_sum = thread_energy(&c, &fast_thread, a.points[0])
            + thread_energy(&c, &slow_thread, a.points[1]);
        assert!((ed.energy - e_sum).abs() < 1e-9, "energy is the sum");
    }

    #[test]
    fn speculation_beyond_error_free_region_raises_time() {
        // Matches Fig 1.2: past the optimum, recovery dominates.
        let c = cfg();
        // Delays uniform on [0.6, 1.0]: err(0.64) big, err(0.928) small.
        let delays: Vec<f64> = (0..400).map(|i| 0.6 + 0.4 * (i as f64 / 400.0)).collect();
        let prof = ThreadProfile::new(1000.0, 1.0, flat_curve(delays));
        let t_aggressive = thread_time(
            &c,
            &prof,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 0,
            },
        );
        let t_mild = thread_time(
            &c,
            &prof,
            OperatingPoint {
                voltage_idx: 0,
                tsr_idx: 4,
            },
        );
        assert!(
            t_aggressive > t_mild,
            "over-speculation must hurt: {t_aggressive} vs {t_mild}"
        );
    }
}
