//! Exhaustive reference solver: enumerates every `(Q·S)^M` assignment.
//!
//! Exists purely to certify the optimality of [`crate::synts_poly`] and
//! [`crate::synts_milp`] on small instances (Lemma 4.2.1's empirical
//! counterpart). Refuses instances beyond a hard candidate cap.

use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};
use crate::poly::Tables;

/// Hard cap on the number of enumerated assignments.
pub const EXHAUSTIVE_LIMIT: u128 = 5_000_000;

/// Finds the optimal assignment by brute force.
///
/// # Errors
///
/// * [`OptError::TooLarge`] if `(Q·S)^M` exceeds [`EXHAUSTIVE_LIMIT`].
/// * [`OptError::BadConfig`] / [`OptError::NoThreads`] as for the other
///   solvers.
pub fn synts_exhaustive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let per_thread = (cfg.q() * cfg.s()) as u128;
    let m = profiles.len();
    let candidates = per_thread.checked_pow(m as u32).unwrap_or(u128::MAX);
    if candidates > EXHAUSTIVE_LIMIT {
        return Err(OptError::TooLarge {
            candidates,
            limit: EXHAUSTIVE_LIMIT,
        });
    }
    let t = Tables::build(cfg, profiles);
    let s = cfg.s();
    let n_points = cfg.q() * s;

    let mut best_cost = f64::INFINITY;
    let mut best_combo = vec![0usize; m];
    let mut combo = vec![0usize; m];
    loop {
        // Evaluate this combination.
        let mut energy = 0.0;
        let mut texec = 0.0f64;
        for (i, &idx) in combo.iter().enumerate() {
            energy += t.energy[i][idx];
            texec = texec.max(t.time[i][idx]);
        }
        let cost = energy + theta * texec;
        if cost < best_cost {
            best_cost = cost;
            best_combo.copy_from_slice(&combo);
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == m {
                let points = best_combo
                    .iter()
                    .map(|&idx| OperatingPoint {
                        voltage_idx: idx / s,
                        tsr_idx: idx % s,
                    })
                    .collect();
                return Ok(Assignment { points });
            }
            combo[pos] += 1;
            if combo[pos] < n_points {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.8]).expect("ok");
        cfg.tsr_levels = vec![0.7, 1.0];
        cfg
    }

    #[test]
    fn finds_obvious_optimum() {
        // One thread, error-free at every r: fastest point is (V=1, r=0.7)
        // and with huge theta that must win.
        let cfg = small_cfg();
        let profiles = vec![ThreadProfile::new(100.0, 1.0, curve(vec![0.1; 10]))];
        let a = synts_exhaustive(&cfg, &profiles, 1e9).expect("small");
        assert_eq!(a.points[0].voltage_idx, 0);
        assert_eq!(a.points[0].tsr_idx, 0);
        // With theta = 0 only energy matters: lowest voltage wins.
        let a = synts_exhaustive(&cfg, &profiles, 0.0).expect("small");
        assert_eq!(a.points[0].voltage_idx, 1);
    }

    #[test]
    fn rejects_oversized_instances() {
        let cfg = SystemConfig::paper_default(10.0); // 42 points per thread
        let profiles: Vec<ThreadProfile<ErrorCurve>> = (0..5)
            .map(|_| ThreadProfile::new(10.0, 1.0, curve(vec![0.5; 4])))
            .collect();
        // 42^5 = 130 million > cap.
        assert!(matches!(
            synts_exhaustive(&cfg, &profiles, 1.0).expect_err("too large"),
            OptError::TooLarge { .. }
        ));
    }
}
