//! Exhaustive reference solver: enumerates every combination of
//! *dominance-pruned* per-thread operating points.
//!
//! Exists purely to certify the optimality of [`crate::synts_poly`] and
//! [`crate::synts_milp`] on small instances (Lemma 4.2.1's empirical
//! counterpart). Since PR 5 the odometer runs over each thread's
//! [`SortedTables`] candidate list instead of the full `(Q·S)^M` grid: a
//! point that is no faster and no cheaper than another can never improve
//! any assignment (replace it with its dominator — `t_exec` and every
//! energy term weakly drop), so pruning provably preserves the optimum
//! while collapsing the search space by orders of magnitude. The
//! [`EXHAUSTIVE_LIMIT`] cap therefore now bounds the *pruned* candidate
//! product. Because the candidate lists come from the same
//! [`SortedTables`] the poly and MILP solvers use, this solver is no
//! longer a *fully* independent oracle against a pruning bug — that
//! role belongs to [`crate::reference::synts_exhaustive_naive`], the
//! pre-pruning enumeration, which the engine's property tests compare
//! against.

use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, SystemConfig, ThreadProfile};
use crate::poly::{SortedTables, Tables};

/// Hard cap on the number of enumerated assignments (after per-thread
/// dominance pruning).
pub const EXHAUSTIVE_LIMIT: u128 = 5_000_000;

/// Finds the optimal assignment by brute force over the pruned grid.
///
/// # Errors
///
/// * [`OptError::TooLarge`] if the product of pruned per-thread candidate
///   counts exceeds [`EXHAUSTIVE_LIMIT`].
/// * [`OptError::BadConfig`] / [`OptError::NoThreads`] as for the other
///   solvers.
pub fn synts_exhaustive<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    crate::poly::validate_theta(theta)?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let t = Tables::build(cfg, profiles);
    let st = SortedTables::build(&t);
    solve_pruned(&t, &st, theta)
}

/// How much per-thread dominance pruning shrinks an instance: total and
/// surviving operating points (summed over threads), and the raw vs
/// pruned combination counts the exhaustive solver would enumerate
/// (both saturating at `u128::MAX`). Diagnostics for benches and logs.
///
/// # Errors
///
/// [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input.
pub fn pruning_stats<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
) -> Result<PruningStats, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let t = Tables::build(cfg, profiles);
    let st = SortedTables::build(&t);
    let per_thread = (cfg.q() * cfg.s()) as u128;
    Ok(PruningStats {
        total_points: cfg.q() * cfg.s() * profiles.len(),
        pruned_points: st.pruned_points(),
        raw_combinations: per_thread
            .checked_pow(profiles.len() as u32)
            .unwrap_or(u128::MAX),
        pruned_combinations: st.pruned_combinations(),
    })
}

/// The result of [`pruning_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningStats {
    /// Operating points across all threads before pruning (`M·Q·S`).
    pub total_points: usize,
    /// Points surviving per-thread dominance pruning, summed.
    pub pruned_points: usize,
    /// `(Q·S)^M` — what the unpruned odometer would enumerate.
    pub raw_combinations: u128,
    /// Product of per-thread survivor counts — what
    /// [`synts_exhaustive`] actually enumerates.
    pub pruned_combinations: u128,
}

/// The pruned odometer over prebuilt tables — shared with the batch path.
pub(crate) fn solve_pruned(
    t: &Tables,
    st: &SortedTables,
    theta: f64,
) -> Result<Assignment, OptError> {
    let m = t.m;
    let candidates = st.pruned_combinations();
    if candidates > EXHAUSTIVE_LIMIT {
        return Err(OptError::TooLarge {
            candidates,
            limit: EXHAUSTIVE_LIMIT,
        });
    }

    let mut best_cost = f64::INFINITY;
    let mut best_combo = vec![0usize; m];
    let mut combo = vec![0usize; m];
    loop {
        // Evaluate this combination (combo holds positions into each
        // thread's ascending candidate list, so combinations are visited
        // in the same relative order as the unpruned odometer).
        let mut energy = 0.0;
        let mut texec = 0.0f64;
        for (i, &pos) in combo.iter().enumerate() {
            let idx = st.candidates(i)[pos] as usize;
            energy += t.energy[i][idx];
            texec = texec.max(t.time[i][idx]);
        }
        let cost = energy + theta * texec;
        if cost < best_cost {
            best_cost = cost;
            best_combo.copy_from_slice(&combo);
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == m {
                let points = best_combo
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| t.point(st.candidates(i)[p] as usize))
                    .collect();
                return Ok(Assignment { points });
            }
            combo[pos] += 1;
            if combo[pos] < st.candidates(pos).len() {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.8]).expect("ok");
        cfg.tsr_levels = vec![0.7, 1.0];
        cfg
    }

    #[test]
    fn finds_obvious_optimum() {
        // One thread, error-free at every r: fastest point is (V=1, r=0.7)
        // and with huge theta that must win.
        let cfg = small_cfg();
        let profiles = vec![ThreadProfile::new(100.0, 1.0, curve(vec![0.1; 10]))];
        let a = synts_exhaustive(&cfg, &profiles, 1e9).expect("small");
        assert_eq!(a.points[0].voltage_idx, 0);
        assert_eq!(a.points[0].tsr_idx, 0);
        // With theta = 0 only energy matters: lowest voltage wins.
        let a = synts_exhaustive(&cfg, &profiles, 0.0).expect("small");
        assert_eq!(a.points[0].voltage_idx, 1);
    }

    #[test]
    fn rejects_oversized_instances() {
        let cfg = SystemConfig::paper_default(10.0); // 42 points per thread
        let profiles: Vec<ThreadProfile<ErrorCurve>> = (0..12)
            .map(|_| ThreadProfile::new(10.0, 1.0, curve(vec![0.5; 4])))
            .collect();
        // Even pruned to the 7-point voltage frontier per thread,
        // 7^12 ≈ 1.4e10 dwarfs the cap.
        assert!(matches!(
            synts_exhaustive(&cfg, &profiles, 1.0).expect_err("too large"),
            OptError::TooLarge { .. }
        ));
    }

    /// Dominance pruning is what makes paper-sized multi-thread instances
    /// tractable at all: 5 threads × 42 points is 130 M raw combinations
    /// (rejected before PR 5), but only the per-voltage frontier survives
    /// pruning and the solve matches Algorithm 1.
    #[test]
    fn pruning_unlocks_previously_oversized_instances() {
        let cfg = SystemConfig::paper_default(10.0);
        let profiles: Vec<ThreadProfile<ErrorCurve>> = (0..5)
            .map(|i| {
                let lo = 0.3 + 0.08 * i as f64;
                let delays: Vec<f64> = (0..64)
                    .map(|n| (lo + (0.99 - lo) * n as f64 / 64.0).min(1.0))
                    .collect();
                ThreadProfile::new(1_000.0 + 500.0 * i as f64, 1.0, curve(delays))
            })
            .collect();
        let theta = 1.0;
        let ex = synts_exhaustive(&cfg, &profiles, theta).expect("pruned fits");
        let poly = crate::poly::synts_poly(&cfg, &profiles, theta).expect("poly");
        let ce = crate::model::weighted_cost(&cfg, &profiles, &ex, theta);
        let cp = crate::model::weighted_cost(&cfg, &profiles, &poly, theta);
        assert!(
            (ce - cp).abs() <= 1e-9 * cp.abs().max(1.0),
            "exhaustive {ce} vs poly {cp}"
        );
    }
}
