//! Error type for the optimization layer.

use std::error::Error;
use std::fmt;

use milp::SolveError;
use timing::TimingError;

/// Errors raised by the SynTS optimizers and controllers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// Inconsistent [`crate::SystemConfig`] (message names the violation).
    BadConfig(&'static str),
    /// No thread profiles were supplied.
    NoThreads,
    /// No feasible assignment exists (cannot happen with a well-formed
    /// config, kept for defense in depth).
    Infeasible,
    /// The MILP back-end failed.
    Milp(SolveError),
    /// A solver name that is not in the [`crate::SolverRegistry`]; the
    /// error carries the registered keys so CLIs and spec loaders can
    /// tell the user what *is* available.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every key the registry holds, sorted.
        known: Vec<String>,
    },
    /// A malformed scenario spec (JSON syntax or an invalid field).
    Spec(String),
    /// A timing-layer failure while preparing inputs.
    Timing(TimingError),
    /// Problem too large for the exhaustive reference solver.
    TooLarge {
        /// Number of candidate assignments requested.
        candidates: u128,
        /// The solver's hard cap.
        limit: u128,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::BadConfig(msg) => write!(f, "bad system config: {msg}"),
            OptError::NoThreads => write!(f, "no thread profiles supplied"),
            OptError::Infeasible => write!(f, "no feasible assignment"),
            OptError::Milp(e) => write!(f, "milp solver: {e}"),
            OptError::UnknownSolver { name, known } => {
                if known.is_empty() {
                    write!(f, "unknown solver scheme '{name}' (the registry is empty)")
                } else {
                    write!(
                        f,
                        "unknown solver scheme '{name}' (registered: {})",
                        known.join(", ")
                    )
                }
            }
            OptError::Spec(msg) => write!(f, "scenario: {msg}"),
            OptError::Timing(e) => write!(f, "timing layer: {e}"),
            OptError::TooLarge { candidates, limit } => write!(
                f,
                "exhaustive search over {candidates} assignments exceeds limit {limit}"
            ),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Milp(e) => Some(e),
            OptError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for OptError {
    fn from(e: SolveError) -> OptError {
        OptError::Milp(e)
    }
}

impl From<TimingError> for OptError {
    fn from(e: TimingError) -> OptError {
        OptError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: OptError = SolveError::Infeasible.into();
        assert!(Error::source(&e).is_some());
        let e: OptError = TimingError::EmptyTrace.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&OptError::NoThreads).is_none());
    }

    #[test]
    fn display() {
        let e = OptError::BadConfig("no TSR levels");
        assert_eq!(e.to_string(), "bad system config: no TSR levels");
        let e = OptError::UnknownSolver {
            name: "annealer".to_string(),
            known: vec!["synts_poly".to_string(), "nominal".to_string()],
        };
        let msg = e.to_string();
        assert!(msg.contains("annealer"), "{msg}");
        assert!(
            msg.contains("synts_poly") && msg.contains("nominal"),
            "lists the registered keys: {msg}"
        );
    }
}
