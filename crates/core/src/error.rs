//! Error type for the optimization layer.

use std::error::Error;
use std::fmt;

use milp::SolveError;
use timing::TimingError;

/// Errors raised by the SynTS optimizers and controllers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// Inconsistent [`crate::SystemConfig`] (message names the violation).
    BadConfig(&'static str),
    /// No thread profiles were supplied.
    NoThreads,
    /// No feasible assignment exists (cannot happen with a well-formed
    /// config, kept for defense in depth).
    Infeasible,
    /// The MILP back-end failed.
    Milp(SolveError),
    /// A solver name that is not in the [`crate::SolverRegistry`]; the
    /// error carries the registered keys so CLIs and spec loaders can
    /// tell the user what *is* available.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every key the registry holds, sorted.
        known: Vec<String>,
    },
    /// A malformed scenario spec (JSON syntax or an invalid field).
    Spec(String),
    /// A timing-layer failure while preparing inputs.
    Timing(TimingError),
    /// Problem too large for the exhaustive reference solver.
    TooLarge {
        /// Number of candidate assignments requested.
        candidates: u128,
        /// The solver's hard cap.
        limit: u128,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::BadConfig(msg) => write!(f, "bad system config: {msg}"),
            OptError::NoThreads => write!(f, "no thread profiles supplied"),
            OptError::Infeasible => write!(f, "no feasible assignment"),
            OptError::Milp(e) => write!(f, "milp solver: {e}"),
            OptError::UnknownSolver { name, known } => {
                if known.is_empty() {
                    write!(f, "unknown solver scheme '{name}' (the registry is empty)")
                } else {
                    write!(
                        f,
                        "unknown solver scheme '{name}' (registered: {})",
                        known.join(", ")
                    )?;
                    if let Some(best) = closest_match(name, known.iter().map(String::as_str)) {
                        write!(f, "; did you mean '{best}'?")?;
                    }
                    Ok(())
                }
            }
            OptError::Spec(msg) => write!(f, "scenario: {msg}"),
            OptError::Timing(e) => write!(f, "timing layer: {e}"),
            OptError::TooLarge { candidates, limit } => write!(
                f,
                "exhaustive search over {candidates} assignments exceeds limit {limit}"
            ),
        }
    }
}

/// Classic two-row Levenshtein edit distance (insert/delete/substitute,
/// unit costs), over `char`s.
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return a.len() + b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `target` by edit distance, if any is close
/// enough to be a plausible typo (distance ≤ max(1, target_len / 3)).
/// Ties resolve to the earliest candidate, so sorted inputs give a
/// deterministic suggestion.
#[must_use]
pub fn closest_match<'a>(
    target: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    let budget = (target.chars().count() / 3).max(1);
    let mut best: Option<(usize, &'a str)> = None;
    for cand in candidates {
        let d = levenshtein(target, cand);
        if d <= budget && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, cand)| cand)
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Milp(e) => Some(e),
            OptError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for OptError {
    fn from(e: SolveError) -> OptError {
        OptError::Milp(e)
    }
}

impl From<TimingError> for OptError {
    fn from(e: TimingError) -> OptError {
        OptError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: OptError = SolveError::Infeasible.into();
        assert!(Error::source(&e).is_some());
        let e: OptError = TimingError::EmptyTrace.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&OptError::NoThreads).is_none());
    }

    #[test]
    fn display() {
        let e = OptError::BadConfig("no TSR levels");
        assert_eq!(e.to_string(), "bad system config: no TSR levels");
        let e = OptError::UnknownSolver {
            name: "annealer".to_string(),
            known: vec!["synts_poly".to_string(), "nominal".to_string()],
        };
        let msg = e.to_string();
        assert!(msg.contains("annealer"), "{msg}");
        assert!(
            msg.contains("synts_poly") && msg.contains("nominal"),
            "lists the registered keys: {msg}"
        );
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("synts_poly", "synts_poly"), 0);
        assert_eq!(levenshtein("synts_poly", "synts_polly"), 1);
    }

    #[test]
    fn close_typos_earn_a_suggestion_distant_names_do_not() {
        let known = ["synts_poly", "synts_milp", "nominal", "exhaustive"];
        assert_eq!(closest_match("synts_polly", known), Some("synts_poly"));
        assert_eq!(closest_match("nominel", known), Some("nominal"));
        assert_eq!(closest_match("warp_drive", known), None);
        let e = OptError::UnknownSolver {
            name: "synts_pol".to_string(),
            known: known.iter().map(|s| (*s).to_string()).collect(),
        };
        let msg = e.to_string();
        assert!(msg.contains("did you mean 'synts_poly'"), "{msg}");
        let e = OptError::UnknownSolver {
            name: "warp_drive".to_string(),
            known: known.iter().map(|s| (*s).to_string()).collect(),
        };
        assert!(!e.to_string().contains("did you mean"), "{e}");
    }
}
