//! # synts-core — Synergistic Timing Speculation
//!
//! Reproduction of the optimization layer of *"Synergistic Timing
//! Speculation for Multi-Threaded Programs"* (DAC 2016 / Yasin 2016):
//! jointly choosing per-thread voltage, frequency and timing-speculation
//! ratio for a barrier-synchronized multi-threaded program on a multi-core
//! processor with Razor-style error recovery.
//!
//! ## The unified solver API
//!
//! Every optimization scheme is a [`Solver`] — one object-safe interface
//! (`solve(cfg, profiles, theta)` plus `name()` / `capabilities()`)
//! implemented by the paper's solvers, the evaluation baselines and the
//! extension solvers alike. A [`SolverRegistry`] provides string-keyed
//! lookup, and [`Synts::builder`] is the fluent front door:
//!
//! ```
//! use synts_core::{Synts, SystemConfig, ThreadProfile};
//! use timing::ErrorCurve;
//!
//! # fn main() -> Result<(), synts_core::OptError> {
//! let cfg = SystemConfig::paper_default(100.0);
//! // Two threads: one speculation-critical, one with headroom.
//! let hot = ErrorCurve::from_normalized_delays(vec![0.95; 64])?;
//! let cool = ErrorCurve::from_normalized_delays(vec![0.55; 64])?;
//! let profiles = vec![
//!     ThreadProfile::new(10_000.0, 1.2, hot),
//!     ThreadProfile::new(10_000.0, 1.0, cool),
//! ];
//! let synts = Synts::builder().scheme("synts_poly").theta(1.0).build()?;
//! let assignment = synts.solve(&cfg, &profiles)?;
//! // The cool thread can be pushed to a cheaper operating point.
//! assert_ne!(assignment.points[0], assignment.points[1]);
//! # Ok(())
//! # }
//! ```
//!
//! Registered schemes (see [`SolverRegistry::with_defaults`]):
//!
//! | name | implementation | paper artifact |
//! |------|----------------|----------------|
//! | `synts_poly` | [`synts_poly`] (Algorithm 1) | the SynTS scheme |
//! | `synts_milp` | [`synts_milp`] | Sec 4.2.1 formulation |
//! | `synts_exhaustive` | [`synts_exhaustive`] | certification oracle |
//! | `nominal` | [`nominal`] | evaluation baseline |
//! | `no_ts` | [`no_ts`] | barrier-aware DVFS baseline |
//! | `per_core_ts` | [`per_core_ts`] | per-core TS baseline |
//! | `power_cap` | [`power_cap`] module | Sec 4.1 generalization |
//! | `synts_leakage` | [`leakage`] module | Sec 4.1 leakage extension |
//! | `thrifty` | [`thrifty`] module | thrifty barrier (ref \[4\]) |
//!
//! ## The pieces, in paper order
//!
//! * [`SystemConfig`] / [`ThreadProfile`] and Eq 4.1–4.3 — the system model
//!   (Sec 4.1);
//! * [`solver`] — the [`Solver`] trait, [`SolverRegistry`] and the
//!   [`Synts`] builder described above;
//! * [`synts_milp`] — the SynTS-MILP formulation (Sec 4.2.1), solved by the
//!   in-workspace [`milp`] crate;
//! * [`synts_poly`] — Algorithm 1, the exact polynomial-time solver;
//! * [`nominal`], [`no_ts`], [`per_core_ts`] — the evaluation baselines;
//! * [`online`] — the sampling-based online controller (Sec 4.3), which
//!   dispatches its optimization step through the [`Solver`] trait
//!   ([`online::run_interval_with`]);
//! * [`overhead`] — the Sec 6.3 hardware-overhead accounting;
//! * [`leakage`] — the Sec 4.1-suggested leakage-power extension;
//! * [`power_cap`] — the Sec 4.1-suggested power-constrained variant;
//! * [`criticality`] — online `N_i` prediction (the Sec 6.2 assumption);
//! * [`thrifty`] — the thrifty-barrier baseline (related work, ref \[4\]);
//! * [`parallel`] — the scoped thread pool fanning θ sweeps, batched
//!   interval re-optimization and gate-level characterization across
//!   cores (`SYNTS_THREADS`, or `Synts::builder().workers(n)`), with
//!   deterministic index-ordered collection;
//! * [`cache`] — the persistent, content-addressed characterization
//!   cache (`SYNTS_CACHE_DIR`): a warm run skips gate simulation
//!   entirely, bit-identically;
//! * [`phase`] — process-wide per-phase wall-clock counters
//!   ([`PhaseStats`]) instrumenting the characterization pipeline, the
//!   evidence trail for parallel-scaling work;
//! * [`pareto`] — trait-dispatched θ sweeps behind Figs 6.11–6.16, fanned
//!   out across the pool;
//! * [`experiments`] — the end-to-end harness tying workloads, circuits and
//!   the optimizer together to regenerate the paper's figures;
//! * [`scenario`] — the declarative layer over all of the above: a
//!   serializable [`scenario::ScenarioSpec`] run by
//!   [`scenario::Experiment`] into a typed, JSON/CSV-serializable
//!   [`scenario::Report`] (specs on disk → reproducible figures).
#![forbid(unsafe_code)]

mod baselines;
pub mod cache;
pub mod criticality;
mod error;
mod exhaustive;
pub mod experiments;
pub mod extensions;
pub mod faults;
pub mod leakage;
mod milp_formulation;
mod model;
pub mod online;
pub mod overhead;
pub mod parallel;
pub mod pareto;
pub mod phase;
mod poly;
pub mod power_cap;
pub mod reference;
pub mod scenario;
pub mod solver;
pub mod thrifty;

pub use baselines::{no_ts, nominal, per_core_ts};
pub use cache::{
    characterize_cached, characterize_workload_cached, CacheEntry, CacheStats, CharCache,
    CACHE_DIR_ENV,
};
pub use error::{closest_match, levenshtein, OptError};
pub use exhaustive::{pruning_stats, synts_exhaustive, PruningStats, EXHAUSTIVE_LIMIT};
pub use faults::{FaultPlan, FAULTS_ENV};
pub use milp_formulation::{synts_milp, synts_milp_with, MilpTuning};
pub use model::{
    evaluate, thread_energy, thread_time, weighted_cost, Assignment, OperatingPoint, SystemConfig,
    ThreadProfile, RAZOR_PENALTY_CYCLES,
};
pub use online::{
    run_interval, run_interval_full, run_interval_offline, run_interval_with,
    run_intervals_batched, IntervalOutcome, SamplingPlan, ThreadTrace,
};
pub use overhead::{estimate_overhead, estimate_overhead_defaults, OverheadReport};
pub use parallel::{worker_count, ThreadPool, THREADS_ENV};
pub use pareto::{
    default_theta_sweep, log_theta_grid, pareto_sweep, pareto_sweep_pooled, theta_equal_weight,
    SweepPoint,
};
pub use phase::{time_phase, Phase, PhaseStats};
pub use poly::synts_poly;
pub use scenario::{
    Dataset, Experiment, IntervalSelection, Quality, Record, Report, ReportCheck, ScenarioSpec,
    Shard, ShardPlan, ThetaSpec,
};
pub use solver::{
    Capabilities, Objective, SolveRequest, Solver, SolverRegistry, Synts, SyntsBuilder,
};
