//! # synts-core — Synergistic Timing Speculation
//!
//! Reproduction of the optimization layer of *"Synergistic Timing
//! Speculation for Multi-Threaded Programs"* (DAC 2016 / Yasin 2016):
//! jointly choosing per-thread voltage, frequency and timing-speculation
//! ratio for a barrier-synchronized multi-threaded program on a multi-core
//! processor with Razor-style error recovery.
//!
//! The pieces, in paper order:
//!
//! * [`SystemConfig`] / [`ThreadProfile`] and Eq 4.1–4.3 — the system model
//!   (Sec 4.1);
//! * [`synts_milp`] — the SynTS-MILP formulation (Sec 4.2.1), solved by the
//!   in-workspace [`milp`] crate;
//! * [`synts_poly`] — Algorithm 1, the exact polynomial-time solver;
//! * [`nominal`], [`no_ts`], [`per_core_ts`] — the evaluation baselines;
//! * [`online`] — the sampling-based online controller (Sec 4.3);
//! * [`overhead`] — the Sec 6.3 hardware-overhead accounting;
//! * [`leakage`] — the Sec 4.1-suggested leakage-power extension;
//! * [`power_cap`] — the Sec 4.1-suggested power-constrained variant;
//! * [`criticality`] — online `N_i` prediction (the Sec 6.2 assumption);
//! * [`thrifty`] — the thrifty-barrier baseline (related work, ref \[4\]);
//! * [`pareto`] — θ sweeps behind Figs 6.11–6.16;
//! * [`experiments`] — the end-to-end harness tying workloads, circuits and
//!   the optimizer together to regenerate the paper's figures.
//!
//! ```
//! use synts_core::{synts_poly, SystemConfig, ThreadProfile};
//! use timing::ErrorCurve;
//!
//! # fn main() -> Result<(), synts_core::OptError> {
//! let cfg = SystemConfig::paper_default(100.0);
//! // Two threads: one speculation-critical, one with headroom.
//! let hot = ErrorCurve::from_normalized_delays(vec![0.95; 64])?;
//! let cool = ErrorCurve::from_normalized_delays(vec![0.55; 64])?;
//! let profiles = vec![
//!     ThreadProfile::new(10_000.0, 1.2, hot),
//!     ThreadProfile::new(10_000.0, 1.0, cool),
//! ];
//! let assignment = synts_poly(&cfg, &profiles, 1.0)?;
//! // The cool thread can be pushed to a cheaper operating point.
//! assert_ne!(assignment.points[0], assignment.points[1]);
//! # Ok(())
//! # }
//! ```

mod baselines;
pub mod criticality;
mod error;
mod exhaustive;
pub mod extensions;
pub mod experiments;
pub mod leakage;
mod milp_formulation;
pub mod power_cap;
mod model;
pub mod online;
pub mod overhead;
pub mod pareto;
mod poly;
pub mod thrifty;

pub use baselines::{no_ts, nominal, per_core_ts};
pub use error::OptError;
pub use exhaustive::{synts_exhaustive, EXHAUSTIVE_LIMIT};
pub use milp_formulation::synts_milp;
pub use model::{
    evaluate, thread_energy, thread_time, weighted_cost, Assignment, OperatingPoint, SystemConfig,
    ThreadProfile, RAZOR_PENALTY_CYCLES,
};
pub use online::{run_interval, run_interval_offline, IntervalOutcome, SamplingPlan, ThreadTrace};
pub use overhead::{estimate_overhead, estimate_overhead_defaults, OverheadReport};
pub use pareto::{
    assignment_for, default_theta_sweep, pareto_sweep, theta_equal_weight, Scheme, SweepPoint,
};
pub use poly::synts_poly;
