//! SynTS-Poly — the paper's Algorithm 1, an exact polynomial-time solver
//! for SynTS-OPT (Eq 4.4).
//!
//! The algorithm iteratively designates each thread as the *critical* thread
//! (the one that reaches the barrier last), tries every voltage/TSR
//! combination for it — which pins the barrier time `t_exec` — and gives
//! every other thread its cheapest operating point that still finishes by
//! `t_exec` (`minEnergy`). Of all `M·Q·S` candidate configurations, the one
//! with the lowest weighted cost is optimal (Lemma 4.2.1): the true optimum
//! has *some* critical thread at *some* operating point, and that case is
//! enumerated; non-critical threads affect only the energy term, for which
//! the greedy per-thread minimum subject to the deadline is exact.
//!
//! Runtime: `O(M²Q²S²)` naïvely. The sweep-scale engine below cuts the
//! inner `minEnergy` query to a binary search over [`SortedTables`] —
//! per-thread operating points sorted by time with prefix-minimum energy
//! arrays — and enumerates only dominance-pruned critical candidates, for
//! `O(M²·QS·log QS)` per θ. Both structures are θ-independent, so
//! [`crate::Solver::solve_batch`] builds them once and shares them across
//! a whole θ chunk. The pre-engine scan survives as
//! [`crate::reference::synts_poly_naive`], the executable spec the fast
//! path is property-tested against.

use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};

/// Per-(thread, voltage, TSR) tables of time and energy, precomputed once.
pub(crate) struct Tables {
    pub(crate) m: usize,
    pub(crate) q: usize,
    pub(crate) s: usize,
    /// `time[i][j*s + k]`
    pub(crate) time: Vec<Vec<f64>>,
    /// `energy[i][j*s + k]`
    pub(crate) energy: Vec<Vec<f64>>,
}

impl Tables {
    pub(crate) fn build<M: ErrorModel>(
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
    ) -> Tables {
        let (q, s) = (cfg.q(), cfg.s());
        let mut time = Vec::with_capacity(profiles.len());
        let mut energy = Vec::with_capacity(profiles.len());
        for prof in profiles {
            // err depends only on r: evaluate once per TSR level.
            let p: Vec<f64> = cfg.tsr_levels.iter().map(|&r| prof.err.err(r)).collect();
            let mut t_row = Vec::with_capacity(q * s);
            let mut e_row = Vec::with_capacity(q * s);
            for j in 0..q {
                let v = cfg.voltages.levels()[j];
                let tnom = cfg.tnom(v);
                for k in 0..s {
                    let cycles = prof.cycles(p[k], cfg.c_penalty);
                    t_row.push(cfg.tsr_levels[k] * tnom * cycles);
                    e_row.push(cfg.alpha * v.energy_scale() * cycles);
                }
            }
            time.push(t_row);
            energy.push(e_row);
        }
        Tables {
            m: profiles.len(),
            q,
            s,
            time,
            energy,
        }
    }

    /// The operating point behind flat table index `idx`.
    pub(crate) fn point(&self, idx: usize) -> OperatingPoint {
        OperatingPoint {
            voltage_idx: idx / self.s,
            tsr_idx: idx % self.s,
        }
    }

    /// `minEnergy(l, texec)` from Algorithm 1: the cheapest point of thread
    /// `l` finishing by `texec`, or `None` if no point meets the deadline.
    pub(crate) fn min_energy(&self, l: usize, texec: f64) -> Option<(f64, OperatingPoint)> {
        let mut best: Option<(f64, OperatingPoint)> = None;
        let bound = deadline(texec);
        for j in 0..self.q {
            for k in 0..self.s {
                let idx = j * self.s + k;
                if self.time[l][idx] <= bound {
                    let en = self.energy[l][idx];
                    if best.is_none_or(|(b, _)| en < b) {
                        best = Some((
                            en,
                            OperatingPoint {
                                voltage_idx: j,
                                tsr_idx: k,
                            },
                        ));
                    }
                }
            }
        }
        best
    }
}

/// Deadline slack used by every feasibility test: a point meets `texec`
/// iff `time <= texec·(1 + 1e-12) + 1e-12`.
#[inline]
fn deadline(texec: f64) -> f64 {
    texec * (1.0 + 1e-12) + 1e-12
}

/// Rejects weights outside Eq 4.4's domain. θ < 0 rewards a *larger*
/// barrier time, where dominance pruning no longer preserves the
/// optimum (a slower-and-costlier point can win); the engine refuses
/// loudly instead of answering wrong. `!(θ ≥ 0)` also catches NaN.
// `!(θ ≥ 0)` rather than `θ < 0`: must also reject NaN.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub(crate) fn validate_theta(theta: f64) -> Result<(), OptError> {
    if !(theta >= 0.0) {
        return Err(OptError::BadConfig(
            "theta must be non-negative (Eq 4.4 weights execution time)",
        ));
    }
    Ok(())
}

/// θ-independent companion to [`Tables`]: per-thread operating points
/// sorted by time with prefix-minimum-energy arrays, plus the per-thread
/// dominance-pruned candidate lists.
///
/// Everything here depends only on `(cfg, profiles)` — never on θ — so
/// one build serves a whole θ sweep:
///
/// * [`SortedTables::min_energy`] answers Algorithm 1's
///   minEnergy-subject-to-deadline query in `O(log QS)` (binary search +
///   prefix-min lookup) instead of the naive `O(QS)` rescan, returning
///   exactly the point the naive scan would pick (ties broken toward the
///   smallest flat index).
/// * [`SortedTables::candidates`] lists the points that survive
///   per-thread dominance pruning — a point that is no faster *and* no
///   cheaper than another can never improve any assignment, so dropping
///   it provably preserves the optimal cost for every solver that
///   enumerates candidates (poly's critical-thread loop, the exhaustive
///   odometer, the MILP seed).
pub(crate) struct SortedTables {
    /// Number of TSR levels (to decode flat indices into points).
    s: usize,
    /// `time_sorted[i][pos]`: per-thread point times ascending by
    /// `(time, energy, idx)` — the binary-search key.
    time_sorted: Vec<Vec<f64>>,
    /// `prefix_min[i][pos]`: `(energy, idx)` of the cheapest point among
    /// the first `pos + 1` time-sorted points, ties toward the smallest
    /// `idx` — exactly what the naive minEnergy scan returns for a
    /// deadline admitting that prefix.
    prefix_min: Vec<Vec<(f64, u32)>>,
    /// `candidates[i]`: dominance-pruned flat indices of thread `i`,
    /// ascending — the naive enumeration order restricted to survivors.
    candidates: Vec<Vec<u32>>,
}

impl SortedTables {
    /// Sorts and prunes `t` once; `O(M·QS·log QS)`.
    pub(crate) fn build(t: &Tables) -> SortedTables {
        let n_points = t.q * t.s;
        let mut time_sorted = Vec::with_capacity(t.m);
        let mut prefix_min = Vec::with_capacity(t.m);
        let mut candidates = Vec::with_capacity(t.m);
        for i in 0..t.m {
            let (time, energy) = (&t.time[i], &t.energy[i]);
            let mut by_time: Vec<u32> = (0..n_points as u32).collect();
            by_time.sort_by(|&a, &b| {
                let (a, b) = (a as usize, b as usize);
                time[a]
                    .partial_cmp(&time[b])
                    .expect("finite times")
                    .then(energy[a].partial_cmp(&energy[b]).expect("finite energies"))
                    .then(a.cmp(&b))
            });
            let times: Vec<f64> = by_time.iter().map(|&idx| time[idx as usize]).collect();
            // Running minimum of (energy, idx) over the sorted prefix.
            let mut best = (f64::INFINITY, u32::MAX);
            let mins: Vec<(f64, u32)> = by_time
                .iter()
                .map(|&idx| {
                    let en = energy[idx as usize];
                    if en < best.0 || (en == best.0 && idx < best.1) {
                        best = (en, idx);
                    }
                    best
                })
                .collect();
            // Dominance pruning: in (time, energy, idx) order every earlier
            // point is no slower, so a point survives iff it is strictly
            // cheaper than everything before it (equal-cost duplicates keep
            // the earliest, i.e. smallest-index, copy).
            let mut cheapest = f64::INFINITY;
            let mut keep: Vec<u32> = by_time
                .iter()
                .filter(|&&idx| {
                    let en = energy[idx as usize];
                    let dominant = en < cheapest;
                    if dominant {
                        cheapest = en;
                    }
                    dominant
                })
                .copied()
                .collect();
            keep.sort_unstable();
            time_sorted.push(times);
            prefix_min.push(mins);
            candidates.push(keep);
        }
        SortedTables {
            s: t.s,
            time_sorted,
            prefix_min,
            candidates,
        }
    }

    /// `minEnergy(l, texec)` in `O(log QS)` — result-identical to
    /// [`Tables::min_energy`], including tie-breaking.
    pub(crate) fn min_energy(&self, l: usize, texec: f64) -> Option<(f64, OperatingPoint)> {
        let bound = deadline(texec);
        let feasible = self.time_sorted[l].partition_point(|&time| time <= bound);
        if feasible == 0 {
            return None;
        }
        let (en, idx) = self.prefix_min[l][feasible - 1];
        let idx = idx as usize;
        Some((
            en,
            OperatingPoint {
                voltage_idx: idx / self.s,
                tsr_idx: idx % self.s,
            },
        ))
    }

    /// Thread `i`'s dominance-pruned candidate indices, ascending.
    pub(crate) fn candidates(&self, i: usize) -> &[u32] {
        &self.candidates[i]
    }

    /// A surviving candidate of thread `i` that dominates point `idx`
    /// (no slower and no cheaper) — `idx` itself when it survived
    /// pruning. Exists for every point by the pruning invariant; used to
    /// remap assignments produced over the full table (e.g. minEnergy
    /// ties) onto the pruned space without raising their cost.
    pub(crate) fn dominating_candidate(&self, t: &Tables, i: usize, idx: usize) -> usize {
        let (time, energy) = (t.time[i][idx], t.energy[i][idx]);
        self.candidates[i]
            .iter()
            .map(|&c| c as usize)
            .find(|&c| t.time[i][c] <= time && t.energy[i][c] <= energy)
            .expect("every point has a surviving dominator")
    }

    /// Product of per-thread pruned candidate counts, saturating — the
    /// size of the exhaustive solver's search space after pruning.
    pub(crate) fn pruned_combinations(&self) -> u128 {
        self.candidates
            .iter()
            .fold(1u128, |acc, c| acc.saturating_mul(c.len() as u128))
    }

    /// Number of points that survived pruning, summed over threads.
    pub(crate) fn pruned_points(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }
}

/// [`Tables`] plus its θ-independent [`SortedTables`] companion — the
/// unit of per-instance state [`crate::Solver::solve_batch`] caches and
/// shares across a θ chunk.
pub(crate) struct PreparedTables {
    pub(crate) tables: Tables,
    pub(crate) sorted: SortedTables,
}

impl PreparedTables {
    pub(crate) fn build<M: ErrorModel>(
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
    ) -> PreparedTables {
        let tables = Tables::build(cfg, profiles);
        let sorted = SortedTables::build(&tables);
        PreparedTables { tables, sorted }
    }
}

/// Solves SynTS-OPT exactly in polynomial time (Algorithm 1).
///
/// Returns the optimal per-thread assignment for weight `theta`.
///
/// # Errors
///
/// * [`OptError::BadConfig`] if `cfg` is malformed or `theta` is
///   negative/NaN (Eq 4.4's weight domain).
/// * [`OptError::NoThreads`] if `profiles` is empty.
/// * [`OptError::Infeasible`] cannot occur for a valid config (the all-
///   nominal assignment is always feasible) but is kept for robustness.
pub fn synts_poly<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    validate_theta(theta)?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let p = PreparedTables::build(cfg, profiles);
    solve_prepared(&p, theta)
}

/// Algorithm 1's search over precomputed [`Tables`], exactly as the paper
/// states it: full `Q·S` rescan per minEnergy query, every point a
/// critical candidate. This is the reference path
/// ([`crate::reference::synts_poly_naive`]) the sweep-scale engine is
/// tested against; production solving goes through [`solve_prepared`].
pub(crate) fn solve_on_tables(t: &Tables, theta: f64) -> Result<Assignment, OptError> {
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Assignment> = None;
    let mut points = vec![
        OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 0
        };
        t.m
    ];
    for i in 0..t.m {
        for j in 0..t.q {
            for k in 0..t.s {
                let idx = j * t.s + k;
                let texec = t.time[i][idx];
                let mut en = t.energy[i][idx];
                points[i] = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                let mut feasible = true;
                for l in 0..t.m {
                    if l == i {
                        continue;
                    }
                    match t.min_energy(l, texec) {
                        Some((e, p)) => {
                            en += e;
                            points[l] = p;
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                let cost = en + theta * texec;
                if cost < best_cost {
                    best_cost = cost;
                    best = Some(Assignment {
                        points: points.clone(),
                    });
                }
            }
        }
    }
    best.ok_or(OptError::Infeasible)
}

/// Algorithm 1 on the sweep-scale engine: critical candidates come from
/// the dominance-pruned per-thread lists and every minEnergy query is a
/// binary search — `O(M²·QS·log QS)` per θ against shared θ-independent
/// [`PreparedTables`].
///
/// Produces the same optimal cost as [`solve_on_tables`] always (pruning
/// cannot remove every optimal critical candidate — replacing each
/// dominated point of an optimal assignment by a dominator yields an
/// equally good assignment using only survivors), and the identical
/// assignment away from exact cost ties, since candidates are visited in
/// the same ascending index order and minEnergy tie-breaking is
/// preserved bit-for-bit.
pub(crate) fn solve_prepared(p: &PreparedTables, theta: f64) -> Result<Assignment, OptError> {
    let (t, st) = (&p.tables, &p.sorted);
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Assignment> = None;
    let mut points = vec![
        OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 0
        };
        t.m
    ];
    for i in 0..t.m {
        for &cand in st.candidates(i) {
            let idx = cand as usize;
            let texec = t.time[i][idx];
            let mut en = t.energy[i][idx];
            points[i] = t.point(idx);
            let mut feasible = true;
            for l in 0..t.m {
                if l == i {
                    continue;
                }
                match st.min_energy(l, texec) {
                    Some((e, p)) => {
                        en += e;
                        points[l] = p;
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let cost = en + theta * texec;
            if cost < best_cost {
                best_cost = cost;
                best = Some(Assignment {
                    points: points.clone(),
                });
            }
        }
    }
    best.ok_or(OptError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{evaluate, weighted_cost};
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    /// A small heterogeneous 3-thread instance used across solver tests.
    fn instance() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let cfg = SystemConfig::paper_default(10.0);
        // Thread 0: long delays (speculation-critical, like Radix T0).
        let hot: Vec<f64> = (0..200).map(|i| 0.70 + 0.30 * (i as f64 / 200.0)).collect();
        // Thread 1: moderate.
        let mid: Vec<f64> = (0..200).map(|i| 0.50 + 0.35 * (i as f64 / 200.0)).collect();
        // Thread 2: short delays (lots of speculation headroom).
        let cool: Vec<f64> = (0..200).map(|i| 0.30 + 0.35 * (i as f64 / 200.0)).collect();
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(hot)),
            ThreadProfile::new(9_000.0, 1.1, curve(mid)),
            ThreadProfile::new(11_000.0, 1.0, curve(cool)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn returns_feasible_assignment() {
        let (cfg, profiles) = instance();
        let a = synts_poly(&cfg, &profiles, 1.0).expect("solvable");
        assert_eq!(a.len(), 3);
        for p in &a.points {
            assert!(p.voltage_idx < cfg.q());
            assert!(p.tsr_idx < cfg.s());
        }
    }

    #[test]
    fn matches_exhaustive_on_small_instances() {
        let (mut cfg, profiles) = instance();
        // Shrink the level sets so exhaustive search is cheap.
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.82, 1.0];
        for theta in [0.0, 0.01, 1.0, 100.0] {
            let poly = synts_poly(&cfg, &profiles, theta).expect("poly");
            let ex = crate::exhaustive::synts_exhaustive(&cfg, &profiles, theta).expect("ex");
            let cp = weighted_cost(&cfg, &profiles, &poly, theta);
            let ce = weighted_cost(&cfg, &profiles, &ex, theta);
            assert!(
                (cp - ce).abs() <= 1e-9 * ce.abs().max(1.0),
                "theta {theta}: poly {cp} vs exhaustive {ce}"
            );
        }
    }

    #[test]
    fn high_theta_prefers_speed_low_theta_prefers_energy() {
        let (cfg, profiles) = instance();
        let fast = synts_poly(&cfg, &profiles, 1e9).expect("poly");
        let frugal = synts_poly(&cfg, &profiles, 1e-9).expect("poly");
        let ed_fast = evaluate(&cfg, &profiles, &fast);
        let ed_frugal = evaluate(&cfg, &profiles, &frugal);
        assert!(ed_fast.time <= ed_frugal.time + 1e-9);
        assert!(ed_frugal.energy <= ed_fast.energy + 1e-9);
    }

    #[test]
    fn single_thread_reduces_to_per_core_optimum() {
        let (cfg, profiles) = instance();
        let single = &profiles[..1];
        let a = synts_poly(&cfg, single, 1.0).expect("poly");
        // Brute-force the single thread.
        let mut best = f64::INFINITY;
        for j in 0..cfg.q() {
            for k in 0..cfg.s() {
                let p = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                let cost = crate::model::thread_energy(&cfg, &single[0], p)
                    + 1.0 * crate::model::thread_time(&cfg, &single[0], p);
                best = best.min(cost);
            }
        }
        let got = weighted_cost(&cfg, single, &a, 1.0);
        assert!((got - best).abs() < 1e-9 * best);
    }

    #[test]
    fn empty_profiles_rejected() {
        let (cfg, _) = instance();
        let empty: Vec<ThreadProfile<ErrorCurve>> = Vec::new();
        assert_eq!(
            synts_poly(&cfg, &empty, 1.0).expect_err("no threads"),
            OptError::NoThreads
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let (mut cfg, profiles) = instance();
        cfg.tsr_levels = vec![0.8, 0.6, 1.0];
        assert!(matches!(
            synts_poly(&cfg, &profiles, 1.0).expect_err("bad cfg"),
            OptError::BadConfig(_)
        ));
    }

    #[test]
    fn min_energy_respects_deadline() {
        let (cfg, profiles) = instance();
        let t = Tables::build(&cfg, &profiles);
        // A deadline shorter than the thread's fastest point -> None.
        assert!(t.min_energy(0, 0.0).is_none());
        // A generous deadline -> the global energy minimum for that thread.
        let (en, p) = t.min_energy(0, f64::INFINITY).expect("feasible");
        let min_possible = (0..cfg.q() * cfg.s())
            .map(|idx| t.energy[0][idx])
            .fold(f64::INFINITY, f64::min);
        assert!((en - min_possible).abs() < 1e-12);
        assert!(t.time[0][p.voltage_idx * t.s + p.tsr_idx].is_finite());
    }
}
