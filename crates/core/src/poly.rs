//! SynTS-Poly — the paper's Algorithm 1, an exact polynomial-time solver
//! for SynTS-OPT (Eq 4.4).
//!
//! The algorithm iteratively designates each thread as the *critical* thread
//! (the one that reaches the barrier last), tries every voltage/TSR
//! combination for it — which pins the barrier time `t_exec` — and gives
//! every other thread its cheapest operating point that still finishes by
//! `t_exec` (`minEnergy`). Of all `M·Q·S` candidate configurations, the one
//! with the lowest weighted cost is optimal (Lemma 4.2.1): the true optimum
//! has *some* critical thread at *some* operating point, and that case is
//! enumerated; non-critical threads affect only the energy term, for which
//! the greedy per-thread minimum subject to the deadline is exact.
//!
//! Runtime: `O(M²Q²S²)` — quadratic in threads, voltage and TSR levels.

use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};

/// Per-(thread, voltage, TSR) tables of time and energy, precomputed once.
pub(crate) struct Tables {
    pub(crate) m: usize,
    pub(crate) q: usize,
    pub(crate) s: usize,
    /// `time[i][j*s + k]`
    pub(crate) time: Vec<Vec<f64>>,
    /// `energy[i][j*s + k]`
    pub(crate) energy: Vec<Vec<f64>>,
}

impl Tables {
    pub(crate) fn build<M: ErrorModel>(
        cfg: &SystemConfig,
        profiles: &[ThreadProfile<M>],
    ) -> Tables {
        let (q, s) = (cfg.q(), cfg.s());
        let mut time = Vec::with_capacity(profiles.len());
        let mut energy = Vec::with_capacity(profiles.len());
        for prof in profiles {
            // err depends only on r: evaluate once per TSR level.
            let p: Vec<f64> = cfg.tsr_levels.iter().map(|&r| prof.err.err(r)).collect();
            let mut t_row = Vec::with_capacity(q * s);
            let mut e_row = Vec::with_capacity(q * s);
            for j in 0..q {
                let v = cfg.voltages.levels()[j];
                let tnom = cfg.tnom(v);
                for k in 0..s {
                    let cycles = prof.cycles(p[k], cfg.c_penalty);
                    t_row.push(cfg.tsr_levels[k] * tnom * cycles);
                    e_row.push(cfg.alpha * v.energy_scale() * cycles);
                }
            }
            time.push(t_row);
            energy.push(e_row);
        }
        Tables {
            m: profiles.len(),
            q,
            s,
            time,
            energy,
        }
    }

    /// `minEnergy(l, texec)` from Algorithm 1: the cheapest point of thread
    /// `l` finishing by `texec`, or `None` if no point meets the deadline.
    pub(crate) fn min_energy(&self, l: usize, texec: f64) -> Option<(f64, OperatingPoint)> {
        let mut best: Option<(f64, OperatingPoint)> = None;
        for j in 0..self.q {
            for k in 0..self.s {
                let idx = j * self.s + k;
                if self.time[l][idx] <= texec * (1.0 + 1e-12) + 1e-12 {
                    let en = self.energy[l][idx];
                    if best.is_none_or(|(b, _)| en < b) {
                        best = Some((
                            en,
                            OperatingPoint {
                                voltage_idx: j,
                                tsr_idx: k,
                            },
                        ));
                    }
                }
            }
        }
        best
    }
}

/// Solves SynTS-OPT exactly in polynomial time (Algorithm 1).
///
/// Returns the optimal per-thread assignment for weight `theta`.
///
/// # Errors
///
/// * [`OptError::BadConfig`] if `cfg` is malformed.
/// * [`OptError::NoThreads`] if `profiles` is empty.
/// * [`OptError::Infeasible`] cannot occur for a valid config (the all-
///   nominal assignment is always feasible) but is kept for robustness.
pub fn synts_poly<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let t = Tables::build(cfg, profiles);
    solve_on_tables(&t, theta)
}

/// Algorithm 1's search over precomputed [`Tables`] — the table build is
/// the per-benchmark setup `Solver::solve_batch` hoists out of θ loops.
pub(crate) fn solve_on_tables(t: &Tables, theta: f64) -> Result<Assignment, OptError> {
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Assignment> = None;
    let mut points = vec![
        OperatingPoint {
            voltage_idx: 0,
            tsr_idx: 0
        };
        t.m
    ];
    for i in 0..t.m {
        for j in 0..t.q {
            for k in 0..t.s {
                let idx = j * t.s + k;
                let texec = t.time[i][idx];
                let mut en = t.energy[i][idx];
                points[i] = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                let mut feasible = true;
                for l in 0..t.m {
                    if l == i {
                        continue;
                    }
                    match t.min_energy(l, texec) {
                        Some((e, p)) => {
                            en += e;
                            points[l] = p;
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                let cost = en + theta * texec;
                if cost < best_cost {
                    best_cost = cost;
                    best = Some(Assignment {
                        points: points.clone(),
                    });
                }
            }
        }
    }
    best.ok_or(OptError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{evaluate, weighted_cost};
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    /// A small heterogeneous 3-thread instance used across solver tests.
    fn instance() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let cfg = SystemConfig::paper_default(10.0);
        // Thread 0: long delays (speculation-critical, like Radix T0).
        let hot: Vec<f64> = (0..200).map(|i| 0.70 + 0.30 * (i as f64 / 200.0)).collect();
        // Thread 1: moderate.
        let mid: Vec<f64> = (0..200).map(|i| 0.50 + 0.35 * (i as f64 / 200.0)).collect();
        // Thread 2: short delays (lots of speculation headroom).
        let cool: Vec<f64> = (0..200).map(|i| 0.30 + 0.35 * (i as f64 / 200.0)).collect();
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(hot)),
            ThreadProfile::new(9_000.0, 1.1, curve(mid)),
            ThreadProfile::new(11_000.0, 1.0, curve(cool)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn returns_feasible_assignment() {
        let (cfg, profiles) = instance();
        let a = synts_poly(&cfg, &profiles, 1.0).expect("solvable");
        assert_eq!(a.len(), 3);
        for p in &a.points {
            assert!(p.voltage_idx < cfg.q());
            assert!(p.tsr_idx < cfg.s());
        }
    }

    #[test]
    fn matches_exhaustive_on_small_instances() {
        let (mut cfg, profiles) = instance();
        // Shrink the level sets so exhaustive search is cheap.
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.82, 1.0];
        for theta in [0.0, 0.01, 1.0, 100.0] {
            let poly = synts_poly(&cfg, &profiles, theta).expect("poly");
            let ex = crate::exhaustive::synts_exhaustive(&cfg, &profiles, theta).expect("ex");
            let cp = weighted_cost(&cfg, &profiles, &poly, theta);
            let ce = weighted_cost(&cfg, &profiles, &ex, theta);
            assert!(
                (cp - ce).abs() <= 1e-9 * ce.abs().max(1.0),
                "theta {theta}: poly {cp} vs exhaustive {ce}"
            );
        }
    }

    #[test]
    fn high_theta_prefers_speed_low_theta_prefers_energy() {
        let (cfg, profiles) = instance();
        let fast = synts_poly(&cfg, &profiles, 1e9).expect("poly");
        let frugal = synts_poly(&cfg, &profiles, 1e-9).expect("poly");
        let ed_fast = evaluate(&cfg, &profiles, &fast);
        let ed_frugal = evaluate(&cfg, &profiles, &frugal);
        assert!(ed_fast.time <= ed_frugal.time + 1e-9);
        assert!(ed_frugal.energy <= ed_fast.energy + 1e-9);
    }

    #[test]
    fn single_thread_reduces_to_per_core_optimum() {
        let (cfg, profiles) = instance();
        let single = &profiles[..1];
        let a = synts_poly(&cfg, single, 1.0).expect("poly");
        // Brute-force the single thread.
        let mut best = f64::INFINITY;
        for j in 0..cfg.q() {
            for k in 0..cfg.s() {
                let p = OperatingPoint {
                    voltage_idx: j,
                    tsr_idx: k,
                };
                let cost = crate::model::thread_energy(&cfg, &single[0], p)
                    + 1.0 * crate::model::thread_time(&cfg, &single[0], p);
                best = best.min(cost);
            }
        }
        let got = weighted_cost(&cfg, single, &a, 1.0);
        assert!((got - best).abs() < 1e-9 * best);
    }

    #[test]
    fn empty_profiles_rejected() {
        let (cfg, _) = instance();
        let empty: Vec<ThreadProfile<ErrorCurve>> = Vec::new();
        assert_eq!(
            synts_poly(&cfg, &empty, 1.0).expect_err("no threads"),
            OptError::NoThreads
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let (mut cfg, profiles) = instance();
        cfg.tsr_levels = vec![0.8, 0.6, 1.0];
        assert!(matches!(
            synts_poly(&cfg, &profiles, 1.0).expect_err("bad cfg"),
            OptError::BadConfig(_)
        ));
    }

    #[test]
    fn min_energy_respects_deadline() {
        let (cfg, profiles) = instance();
        let t = Tables::build(&cfg, &profiles);
        // A deadline shorter than the thread's fastest point -> None.
        assert!(t.min_energy(0, 0.0).is_none());
        // A generous deadline -> the global energy minimum for that thread.
        let (en, p) = t.min_energy(0, f64::INFINITY).expect("feasible");
        let min_possible = (0..cfg.q() * cfg.s())
            .map(|idx| t.energy[0][idx])
            .fold(f64::INFINITY, f64::min);
        assert!((en - min_possible).abs() < 1e-12);
        assert!(t.time[0][p.voltage_idx * t.s + p.tsr_idx].is_finite());
    }
}
