//! Array multiplier — the ComplexALU's datapath.
//!
//! A classic ripple-carry array: W partial-product rows, each folded into a
//! running sum by a W-bit ripple adder. The sensitized delay tracks the
//! magnitude and bit patterns of the operands (multiplying by small or
//! sparse values finishes early), which is the data dependence behind the
//! ComplexALU error-probability curves.

use gatelib::{CellKind, NetId, NetlistBuilder, NetlistError};

use crate::adder::ripple_carry_adder;

/// Unsigned `W×W → 2W` array multiplier; returns the product bits, LSB first.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn array_multiplier(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    if a.len() != x.len() || a.is_empty() {
        return Err(NetlistError::InputWidthMismatch {
            expected: a.len(),
            got: x.len(),
        });
    }
    let w = a.len();
    // Partial products: pp[i][j] = a[j] & x[i] (row i weights 2^i).
    let mut pp = Vec::with_capacity(w);
    for &xi in x {
        let row: Vec<NetId> = a
            .iter()
            .map(|&aj| b.cell(CellKind::And2, &[aj, xi]))
            .collect::<Result<_, _>>()?;
        pp.push(row);
    }
    let zero = b.const0()?;
    let mut product = Vec::with_capacity(2 * w);
    // Running sum starts as row 0.
    let mut row_sum: Vec<NetId> = pp[0].clone();
    let mut row_carry = zero;
    product.push(row_sum[0]);
    for row in pp.iter().skip(1) {
        // Addend: running sum shifted right by one, carry as MSB.
        let mut shifted: Vec<NetId> = row_sum[1..].to_vec();
        shifted.push(row_carry);
        let (sum, cout) = ripple_carry_adder(b, &shifted, row, zero)?;
        row_sum = sum;
        row_carry = cout;
        product.push(row_sum[0]);
    }
    // Upper half: remaining sum bits and the final carry.
    product.extend_from_slice(&row_sum[1..]);
    product.push(row_carry);
    debug_assert_eq!(product.len(), 2 * w);
    Ok(product)
}

/// Carry-save (Wallace-style) multiplier: partial products are reduced in
/// log-depth 3:2 compressor layers, then a final Kogge-Stone carry-
/// propagate add. Much shallower than the ripple array — the multiplier
/// counterpart of the adder-topology ablation.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn wallace_multiplier(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    if a.len() != x.len() || a.is_empty() {
        return Err(NetlistError::InputWidthMismatch {
            expected: a.len(),
            got: x.len(),
        });
    }
    let w = a.len();
    let out_w = 2 * w;
    // Column-wise dot diagram: columns[c] = list of bits of weight 2^c.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); out_w];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = b.cell(CellKind::And2, &[aj, xi])?;
            columns[i + j].push(pp);
        }
    }
    // 3:2 / 2:2 compression until every column holds at most two bits.
    loop {
        let tallest = columns.iter().map(Vec::len).max().unwrap_or(0);
        if tallest <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); out_w];
        for c in 0..out_w {
            let col = &columns[c];
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, cy) = crate::prims::full_adder(b, col[i], col[i + 1], col[i + 2])?;
                next[c].push(s);
                if c + 1 < out_w {
                    next[c + 1].push(cy);
                }
                i += 3;
            }
            if col.len() - i == 2 {
                let s = b.cell(CellKind::Xor2, &[col[i], col[i + 1]])?;
                let cy = b.cell(CellKind::And2, &[col[i], col[i + 1]])?;
                next[c].push(s);
                if c + 1 < out_w {
                    next[c + 1].push(cy);
                }
            } else if col.len() - i == 1 {
                next[c].push(col[i]);
            }
        }
        columns = next;
    }
    // Final carry-propagate add of the two remaining rows.
    let zero = b.const0()?;
    let row_a: Vec<NetId> = columns
        .iter()
        .map(|col| col.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NetId> = columns
        .iter()
        .map(|col| col.get(1).copied().unwrap_or(zero))
        .collect();
    let (sum, _cout) = crate::adder::kogge_stone_adder(b, &row_a, &row_b, zero)?;
    Ok(sum)
}

/// Dadda multiplier: the lazy column-compression schedule. Where Wallace
/// compresses every column as hard as possible per layer, Dadda reduces
/// only down to the next entry of the 3/2-growth height sequence
/// (2, 3, 4, 6, 9, 13, …), spending strictly fewer adder cells at the same
/// logical depth — a different area/delay-distribution point for the
/// multiplier ablation.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn dadda_multiplier(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    if a.len() != x.len() || a.is_empty() {
        return Err(NetlistError::InputWidthMismatch {
            expected: a.len(),
            got: x.len(),
        });
    }
    let w = a.len();
    let out_w = 2 * w;
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); out_w];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = b.cell(CellKind::And2, &[aj, xi])?;
            columns[i + j].push(pp);
        }
    }
    // Dadda height targets: d_1 = 2, d_{k+1} = floor(3/2 · d_k), applied
    // descending from the largest entry below the tallest column.
    let tallest = columns.iter().map(Vec::len).max().unwrap_or(0);
    let mut heights = vec![2usize];
    while *heights.last().expect("non-empty") < tallest {
        let last = *heights.last().expect("non-empty");
        heights.push(last * 3 / 2);
    }
    for &target in heights.iter().rev() {
        if target >= tallest {
            continue;
        }
        for c in 0..out_w {
            while columns[c].len() > target {
                let excess = columns[c].len() - target;
                // Consume from the FRONT: those bits settled in an earlier
                // stage. Carries produced in this pass sit at the back and
                // pass through to the next stage, so stages do not ripple
                // into each other.
                if excess >= 2 {
                    // Full adder: −3 here, +1 sum here, +1 carry next.
                    let v = columns[c].remove(0);
                    let y = columns[c].remove(0);
                    let z = columns[c].remove(0);
                    let (s, cy) = crate::prims::full_adder(b, v, y, z)?;
                    columns[c].push(s);
                    if c + 1 < out_w {
                        columns[c + 1].push(cy);
                    }
                } else {
                    // Half adder: −2 here, +1 sum here, +1 carry next.
                    let v = columns[c].remove(0);
                    let y = columns[c].remove(0);
                    let s = b.cell(CellKind::Xor2, &[v, y])?;
                    let cy = b.cell(CellKind::And2, &[v, y])?;
                    columns[c].push(s);
                    if c + 1 < out_w {
                        columns[c + 1].push(cy);
                    }
                }
            }
        }
    }
    let zero = b.const0()?;
    let row_a: Vec<NetId> = columns
        .iter()
        .map(|col| col.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NetId> = columns
        .iter()
        .map(|col| col.get(1).copied().unwrap_or(zero))
        .collect();
    let (sum, _cout) = crate::adder::kogge_stone_adder(b, &row_a, &row_b, zero)?;
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatelib::Netlist;

    fn build(w: usize) -> Netlist {
        let mut b = NetlistBuilder::new("mult");
        let a = b.input_bus("a", w);
        let x = b.input_bus("b", w);
        let p = array_multiplier(&mut b, &a, &x).expect("ok");
        b.output_bus(&p, "p");
        b.finish().expect("valid")
    }

    fn encode(w: usize, a: u64, x: u64) -> Vec<bool> {
        let mut v = Vec::new();
        for i in 0..w {
            v.push((a >> i) & 1 == 1);
        }
        for i in 0..w {
            v.push((x >> i) & 1 == 1);
        }
        v
    }

    fn decode(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }

    #[test]
    fn exhaustive_4x4() {
        let n = build(4);
        for a in 0..16u64 {
            for x in 0..16u64 {
                let out = n.evaluate(&encode(4, a, x)).expect("ok");
                assert_eq!(decode(&out), a * x, "{a} * {x}");
            }
        }
    }

    #[test]
    fn random_8x8() {
        let n = build(8);
        let mut state = 0xdead_beefu64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state & 0xFF;
            let x = (state >> 8) & 0xFF;
            let out = n.evaluate(&encode(8, a, x)).expect("ok");
            assert_eq!(decode(&out), a * x, "{a} * {x}");
        }
    }

    #[test]
    fn zero_operand_is_fast() {
        use gatelib::{TimingSim, Voltage};
        let n = build(8);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&encode(8, 0xAB, 0xCD)).expect("init");
        // Transition to multiply-by-zero: output collapses quickly compared
        // with a full-magnitude multiply from the same starting state.
        let to_zero = sim.apply(&encode(8, 0xAB, 0)).expect("ok").delay;
        sim.apply(&encode(8, 0xAB, 0xCD)).expect("restore");
        let to_big = sim.apply(&encode(8, 0xFF, 0xFF)).expect("ok").delay;
        assert!(to_big > to_zero, "big {to_big} vs zero {to_zero}");
    }

    #[test]
    fn multiplier_has_long_critical_path() {
        use gatelib::{StaticTiming, Voltage};
        let sta_mul = StaticTiming::analyze(&build(8), Voltage::NOMINAL).expect("sta");
        // The 8x8 array should be much deeper than a single 8-bit adder.
        let mut b = NetlistBuilder::new("adder");
        let a = b.input_bus("a", 8);
        let x = b.input_bus("b", 8);
        let cin = b.const0().expect("ok");
        let (s, c) = ripple_carry_adder(&mut b, &a, &x, cin).expect("ok");
        b.output_bus(&s, "s");
        b.output(c, "c");
        let sta_add =
            StaticTiming::analyze(&b.finish().expect("valid"), Voltage::NOMINAL).expect("sta");
        assert!(sta_mul.nominal_period() > 2.0 * sta_add.nominal_period());
    }

    #[test]
    fn wallace_exhaustive_4x4() {
        let mut b = NetlistBuilder::new("wallace");
        let a = b.input_bus("a", 4);
        let x = b.input_bus("b", 4);
        let p = wallace_multiplier(&mut b, &a, &x).expect("ok");
        b.output_bus(&p, "p");
        let n = b.finish().expect("valid");
        for a in 0..16u64 {
            for x in 0..16u64 {
                let out = n.evaluate(&encode(4, a, x)).expect("ok");
                assert_eq!(decode(&out), a * x, "{a} * {x}");
            }
        }
    }

    fn build_dadda(w: usize) -> Netlist {
        let mut b = NetlistBuilder::new("dadda");
        let a = b.input_bus("a", w);
        let x = b.input_bus("b", w);
        let p = dadda_multiplier(&mut b, &a, &x).expect("ok");
        b.output_bus(&p, "p");
        b.finish().expect("valid")
    }

    #[test]
    fn dadda_exhaustive_4x4() {
        let n = build_dadda(4);
        for a in 0..16u64 {
            for x in 0..16u64 {
                let out = n.evaluate(&encode(4, a, x)).expect("ok");
                assert_eq!(decode(&out), a * x, "{a} * {x}");
            }
        }
    }

    #[test]
    fn dadda_random_8x8() {
        let n = build_dadda(8);
        let mut state = 0x0bad_cafeu64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state & 0xFF;
            let x = (state >> 8) & 0xFF;
            let out = n.evaluate(&encode(8, a, x)).expect("ok");
            assert_eq!(decode(&out), a * x, "{a} * {x}");
        }
    }

    #[test]
    fn dadda_spends_fewer_cells_than_wallace() {
        let w = 8;
        let mut b = NetlistBuilder::new("wallace");
        let a = b.input_bus("a", w);
        let x = b.input_bus("b", w);
        let p = wallace_multiplier(&mut b, &a, &x).expect("ok");
        b.output_bus(&p, "p");
        let wallace_cells = b.finish().expect("valid").cell_count();
        let dadda_cells = build_dadda(w).cell_count();
        assert!(
            dadda_cells <= wallace_cells,
            "Dadda {dadda_cells} should not exceed Wallace {wallace_cells}"
        );
    }

    #[test]
    fn dadda_is_shallower_than_array() {
        use gatelib::{StaticTiming, Voltage};
        let array = StaticTiming::analyze(&build(8), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        let dadda = StaticTiming::analyze(&build_dadda(8), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        assert!(dadda < array, "Dadda {dadda} vs array {array}");
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        use gatelib::{StaticTiming, Voltage};
        let array = StaticTiming::analyze(&build(8), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        let mut b = NetlistBuilder::new("wallace8");
        let a = b.input_bus("a", 8);
        let x = b.input_bus("b", 8);
        let p = wallace_multiplier(&mut b, &a, &x).expect("ok");
        b.output_bus(&p, "p");
        let wallace = StaticTiming::analyze(&b.finish().expect("valid"), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        assert!(
            wallace < 0.75 * array,
            "wallace {wallace} should be much shallower than array {array}"
        );
    }

    #[test]
    fn wallace_random_8x8() {
        let mut b = NetlistBuilder::new("wallace8");
        let a = b.input_bus("a", 8);
        let x = b.input_bus("b", 8);
        let p = wallace_multiplier(&mut b, &a, &x).expect("ok");
        b.output_bus(&p, "p");
        let n = b.finish().expect("valid");
        let mut state = 0xfeed_f00du64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state & 0xFF;
            let x = (state >> 8) & 0xFF;
            let out = n.evaluate(&encode(8, a, x)).expect("ok");
            assert_eq!(decode(&out), a * x, "{a} * {x}");
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input_bus("a", 4);
        let x = b.input_bus("b", 5);
        assert!(array_multiplier(&mut b, &a, &x).is_err());
    }
}
