//! Adder topologies: ripple-carry, 4-bit-group carry-lookahead, Kogge-Stone.
//!
//! The SimpleALU defaults to ripple-carry, whose data-dependent carry-chain
//! length produces the broad sensitized-delay distributions that make timing
//! speculation profitable (the same reason the paper's Alpha ALU shows a
//! smooth error-probability curve, Fig 3.5). The faster topologies exist for
//! the `ablation` bench, which quantifies how adder choice reshapes `err(r)`.

use gatelib::{CellKind, NetId, NetlistBuilder, NetlistError};

use crate::prims::full_adder;

/// Which adder topology to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdderKind {
    /// Serial carry chain; delay proportional to sensitized carry length.
    #[default]
    Ripple,
    /// 4-bit lookahead groups with ripple between groups.
    CarryLookahead,
    /// Logarithmic parallel-prefix adder.
    KoggeStone,
    /// 4-bit groups computed for both carry-in values, selected by mux.
    CarrySelect,
    /// Ripple groups with a propagate-controlled skip path around each.
    CarrySkip,
}

impl AdderKind {
    /// All topologies, for ablation sweeps.
    pub const ALL: [AdderKind; 5] = [
        AdderKind::Ripple,
        AdderKind::CarryLookahead,
        AdderKind::KoggeStone,
        AdderKind::CarrySelect,
        AdderKind::CarrySkip,
    ];

    /// Canonical lowercase name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AdderKind::Ripple => "ripple",
            AdderKind::CarryLookahead => "cla",
            AdderKind::KoggeStone => "kogge-stone",
            AdderKind::CarrySelect => "carry-select",
            AdderKind::CarrySkip => "carry-skip",
        }
    }

    /// Instantiates this adder; returns `(sum_bits, carry_out)`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`]; width mismatch between `a` and `b` is
    /// rejected.
    pub fn build(
        self,
        b: &mut NetlistBuilder,
        a: &[NetId],
        x: &[NetId],
        cin: NetId,
    ) -> Result<(Vec<NetId>, NetId), NetlistError> {
        match self {
            AdderKind::Ripple => ripple_carry_adder(b, a, x, cin),
            AdderKind::CarryLookahead => carry_lookahead_adder(b, a, x, cin),
            AdderKind::KoggeStone => kogge_stone_adder(b, a, x, cin),
            AdderKind::CarrySelect => carry_select_adder(b, a, x, cin),
            AdderKind::CarrySkip => carry_skip_adder(b, a, x, cin),
        }
    }
}

fn check_widths(a: &[NetId], x: &[NetId]) -> Result<(), NetlistError> {
    if a.len() != x.len() || a.is_empty() {
        return Err(NetlistError::InputWidthMismatch {
            expected: a.len(),
            got: x.len(),
        });
    }
    Ok(())
}

/// Ripple-carry adder; returns `(sum_bits, carry_out)`.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn ripple_carry_adder(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    check_widths(a, x)?;
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (&ai, &xi) in a.iter().zip(x) {
        let (s, c) = full_adder(b, ai, xi, carry)?;
        sums.push(s);
        carry = c;
    }
    Ok((sums, carry))
}

/// Carry-lookahead adder with 4-bit groups (ripple between groups);
/// returns `(sum_bits, carry_out)`.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn carry_lookahead_adder(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    check_widths(a, x)?;
    let w = a.len();
    // Per-bit propagate/generate.
    let mut p = Vec::with_capacity(w);
    let mut g = Vec::with_capacity(w);
    for (&ai, &xi) in a.iter().zip(x) {
        p.push(b.cell(CellKind::Xor2, &[ai, xi])?);
        g.push(b.cell(CellKind::And2, &[ai, xi])?);
    }
    let mut sums = Vec::with_capacity(w);
    let mut carry = cin; // carry into the current group
    for group in (0..w).step_by(4) {
        let hi = (group + 4).min(w);
        // Carries within the group, computed from group-entry carry.
        let mut c = carry;
        for i in group..hi {
            sums.push(b.cell(CellKind::Xor2, &[p[i], c])?);
            if i + 1 < hi {
                // c_{i+1} = g_i | (p_i & c_i)  — one AOI-style level.
                let t = b.cell(CellKind::And2, &[p[i], c])?;
                c = b.cell(CellKind::Or2, &[g[i], t])?;
            }
        }
        // Group carry-out, folded from the group-entry carry:
        // cout = g_{hi-1} | p_{hi-1}(g_{hi-2} | p_{hi-2}(... | p_group·carry))
        let mut cout = carry;
        for i in group..hi {
            let t = b.cell(CellKind::And2, &[p[i], cout])?;
            cout = b.cell(CellKind::Or2, &[g[i], t])?;
        }
        carry = cout;
    }
    Ok((sums, carry))
}

/// Kogge-Stone parallel-prefix adder; returns `(sum_bits, carry_out)`.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn kogge_stone_adder(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    check_widths(a, x)?;
    let w = a.len();
    let mut p0 = Vec::with_capacity(w);
    let mut g0 = Vec::with_capacity(w);
    for (&ai, &xi) in a.iter().zip(x) {
        p0.push(b.cell(CellKind::Xor2, &[ai, xi])?);
        g0.push(b.cell(CellKind::And2, &[ai, xi])?);
    }
    // Parallel prefix over (g, p): after the sweep, (gg[i], pp[i]) describe
    // the whole range 0..=i.
    let mut gg = g0.clone();
    let mut pp = p0.clone();
    let mut dist = 1;
    while dist < w {
        let mut gg_next = gg.clone();
        let mut pp_next = pp.clone();
        for i in dist..w {
            let t = b.cell(CellKind::And2, &[pp[i], gg[i - dist]])?;
            gg_next[i] = b.cell(CellKind::Or2, &[gg[i], t])?;
            pp_next[i] = b.cell(CellKind::And2, &[pp[i], pp[i - dist]])?;
        }
        gg = gg_next;
        pp = pp_next;
        dist *= 2;
    }
    // Carry into bit i: c_0 = cin; c_{i} = G[i-1] | P[i-1]&cin.
    let mut sums = Vec::with_capacity(w);
    let mut carries = Vec::with_capacity(w + 1);
    carries.push(cin);
    for i in 0..w {
        let t = b.cell(CellKind::And2, &[pp[i], cin])?;
        carries.push(b.cell(CellKind::Or2, &[gg[i], t])?);
    }
    for i in 0..w {
        sums.push(b.cell(CellKind::Xor2, &[p0[i], carries[i]])?);
    }
    Ok((sums, carries[w]))
}

/// Carry-select adder with 4-bit groups; returns `(sum_bits, carry_out)`.
///
/// Each group beyond the first is computed twice — once assuming carry-in
/// 0, once assuming 1 — and a mux chain picks the real results as group
/// carries resolve. Delay concentrates in the mux chain, giving a delay
/// distribution distinct from both the ripple and prefix families.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn carry_select_adder(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    check_widths(a, x)?;
    let w = a.len();
    let zero = b.const0()?;
    let one = b.const1()?;
    let mut sums = Vec::with_capacity(w);
    let mut carry = cin;
    for group in (0..w).step_by(4) {
        let hi = (group + 4).min(w);
        if group == 0 {
            // First group sees the real carry-in directly.
            let (s, c) = ripple_carry_adder(b, &a[group..hi], &x[group..hi], carry)?;
            sums.extend(s);
            carry = c;
            continue;
        }
        // Speculative pair: carry-in 0 and carry-in 1.
        let (s0, c0) = ripple_carry_adder(b, &a[group..hi], &x[group..hi], zero)?;
        let (s1, c1) = ripple_carry_adder(b, &a[group..hi], &x[group..hi], one)?;
        for (lo_bit, hi_bit) in s0.iter().zip(&s1) {
            // Mux2 pin order: [sel, a, b] -> sel ? b : a.
            sums.push(b.cell(CellKind::Mux2, &[carry, *lo_bit, *hi_bit])?);
        }
        carry = b.cell(CellKind::Mux2, &[carry, c0, c1])?;
    }
    Ok((sums, carry))
}

/// Carry-skip adder with 4-bit groups; returns `(sum_bits, carry_out)`.
///
/// Groups ripple internally; a group whose bits all propagate lets the
/// incoming carry *skip* the group through a mux. Worst-case paths shorten
/// only when long propagate runs exist — a data-dependence profile unlike
/// the other topologies.
///
/// # Errors
///
/// Propagates [`NetlistError`]; operand width mismatch is rejected.
pub fn carry_skip_adder(
    b: &mut NetlistBuilder,
    a: &[NetId],
    x: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    check_widths(a, x)?;
    let w = a.len();
    let mut sums = Vec::with_capacity(w);
    let mut carry = cin;
    for group in (0..w).step_by(4) {
        let hi = (group + 4).min(w);
        // Group propagate: AND of per-bit propagates.
        let props: Vec<NetId> = a[group..hi]
            .iter()
            .zip(&x[group..hi])
            .map(|(&ai, &xi)| b.cell(CellKind::Xor2, &[ai, xi]))
            .collect::<Result<_, _>>()?;
        let group_p = crate::prims::and_tree(b, &props)?;
        let (s, ripple_c) = ripple_carry_adder(b, &a[group..hi], &x[group..hi], carry)?;
        sums.extend(s);
        // Skip mux: if every bit propagates, the carry-out IS the carry-in.
        carry = b.cell(CellKind::Mux2, &[group_p, ripple_c, carry])?;
    }
    Ok((sums, carry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatelib::Netlist;

    fn build(kind: AdderKind, w: usize) -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let a = b.input_bus("a", w);
        let x = b.input_bus("b", w);
        let cin = b.input("cin");
        let (s, cout) = kind.build(&mut b, &a, &x, cin).expect("ok");
        b.output_bus(&s, "s");
        b.output(cout, "cout");
        b.finish().expect("valid")
    }

    fn check_exhaustive(kind: AdderKind, w: usize) {
        let n = build(kind, w);
        let max = 1u64 << w;
        for a in 0..max {
            for x in 0..max {
                for cin in 0..2u64 {
                    let mut inputs = Vec::new();
                    for i in 0..w {
                        inputs.push((a >> i) & 1 == 1);
                    }
                    for i in 0..w {
                        inputs.push((x >> i) & 1 == 1);
                    }
                    inputs.push(cin == 1);
                    let out = n.evaluate(&inputs).expect("ok");
                    let expect = a + x + cin;
                    for (i, &bit) in out.iter().enumerate() {
                        assert_eq!(
                            bit,
                            (expect >> i) & 1 == 1,
                            "{kind:?} {a}+{x}+{cin} bit {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ripple_exhaustive_4bit() {
        check_exhaustive(AdderKind::Ripple, 4);
    }

    #[test]
    fn cla_exhaustive_4bit() {
        check_exhaustive(AdderKind::CarryLookahead, 4);
    }

    #[test]
    fn kogge_stone_exhaustive_4bit() {
        check_exhaustive(AdderKind::KoggeStone, 4);
    }

    #[test]
    fn cla_exhaustive_5bit_uneven_group() {
        // Width not divisible by the group size exercises the tail group.
        check_exhaustive(AdderKind::CarryLookahead, 5);
    }

    #[test]
    fn carry_select_exhaustive_4bit() {
        check_exhaustive(AdderKind::CarrySelect, 4);
    }

    #[test]
    fn carry_select_exhaustive_6bit_multi_group() {
        // Two groups (4 + 2): exercises the speculative pair + mux chain.
        check_exhaustive(AdderKind::CarrySelect, 6);
    }

    #[test]
    fn carry_skip_exhaustive_4bit() {
        check_exhaustive(AdderKind::CarrySkip, 4);
    }

    #[test]
    fn carry_skip_exhaustive_6bit_multi_group() {
        // The skip path only matters across group boundaries.
        check_exhaustive(AdderKind::CarrySkip, 6);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = AdderKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AdderKind::ALL.len());
    }

    #[test]
    fn wide_adders_agree_on_random_vectors() {
        let w = 16;
        let nets: Vec<Netlist> = AdderKind::ALL.iter().map(|&k| build(k, w)).collect();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state & 0xFFFF;
            let x = (state >> 16) & 0xFFFF;
            let cin = (state >> 32) & 1;
            let mut inputs = Vec::new();
            for i in 0..w {
                inputs.push((a >> i) & 1 == 1);
            }
            for i in 0..w {
                inputs.push((x >> i) & 1 == 1);
            }
            inputs.push(cin == 1);
            let reference = nets[0].evaluate(&inputs).expect("ok");
            for n in &nets[1..] {
                assert_eq!(n.evaluate(&inputs).expect("ok"), reference);
            }
        }
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        use gatelib::{StaticTiming, Voltage};
        let w = 16;
        let ripple = StaticTiming::analyze(&build(AdderKind::Ripple, w), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        let ks = StaticTiming::analyze(&build(AdderKind::KoggeStone, w), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        assert!(ks < ripple, "Kogge-Stone {ks} should beat ripple {ripple}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input_bus("a", 4);
        let x = b.input_bus("b", 3);
        let cin = b.input("cin");
        assert!(ripple_carry_adder(&mut b, &a, &x, cin).is_err());
    }
}
