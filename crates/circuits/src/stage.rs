//! The [`PipeStage`] abstraction: a stage circuit plus its event encoding.

use gatelib::{Netlist, NetlistError};

use crate::complex_alu::ComplexAlu;
use crate::decode::DecodeStage;
use crate::ops::{AluEvent, AluOp};
use crate::simple_alu::SimpleAlu;

/// The three pipeline stages the paper characterizes (Sec 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StageKind {
    /// Instruction decode.
    Decode,
    /// Simple integer ALU (add/sub/logic/shift/compare).
    SimpleAlu,
    /// Complex integer ALU (multiplier).
    ComplexAlu,
}

impl StageKind {
    /// All stages, in the paper's reporting order.
    pub const ALL: [StageKind; 3] = [
        StageKind::Decode,
        StageKind::SimpleAlu,
        StageKind::ComplexAlu,
    ];

    /// Canonical lowercase name, as used in scenario specs and CLIs.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            StageKind::Decode => "decode",
            StageKind::SimpleAlu => "simple-alu",
            StageKind::ComplexAlu => "complex-alu",
        }
    }

    /// Parses a stage from its name, case-insensitively and ignoring
    /// `-`/`_` separators (`"simple-alu"`, `"SimpleALU"`, `"simple_alu"`
    /// all resolve to [`StageKind::SimpleAlu`]) — forgiving enough for
    /// CLI arguments and hand-written spec files.
    #[must_use]
    pub fn from_name(name: &str) -> Option<StageKind> {
        let norm: String = name
            .trim()
            .chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match norm.as_str() {
            "decode" => Some(StageKind::Decode),
            "simplealu" => Some(StageKind::SimpleAlu),
            "complexalu" => Some(StageKind::ComplexAlu),
            _ => None,
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StageKind::Decode => "Decode",
            StageKind::SimpleAlu => "SimpleALU",
            StageKind::ComplexAlu => "ComplexALU",
        };
        f.write_str(s)
    }
}

/// A pipeline stage circuit: netlist plus the mapping from dynamic
/// instructions ([`AluEvent`]s) to input vectors.
///
/// Implementors are [`SimpleAlu`], [`ComplexAlu`] and [`DecodeStage`];
/// [`build_stage`] constructs them uniformly.
pub trait PipeStage: Send + Sync {
    /// Which stage this is.
    fn kind(&self) -> StageKind;

    /// The gate-level netlist.
    fn netlist(&self) -> &Netlist;

    /// Datapath width in bits (instruction width for decode).
    fn width(&self) -> usize;

    /// Whether instructions with this operation exercise the stage's
    /// timing-critical logic (e.g. only multiplies stress the ComplexALU).
    fn accepts(&self, op: AluOp) -> bool;

    /// Encodes an event into the stage's primary-input vector.
    fn encode(&self, ev: &AluEvent) -> Vec<bool> {
        let mut buf = Vec::new();
        self.encode_into(ev, &mut buf);
        buf
    }

    /// Encodes an event into a reused buffer (cleared first) — the
    /// allocation-free form of [`PipeStage::encode`] that the batched
    /// characterization loop drives.
    fn encode_into(&self, ev: &AluEvent, buf: &mut Vec<bool>);

    /// Convenience: the stage's display name.
    fn name(&self) -> String {
        self.kind().to_string()
    }
}

/// Builds the given stage at the given datapath width.
///
/// The decode stage ignores `width` (its input is the 32-bit instruction
/// word).
///
/// # Errors
///
/// Propagates [`NetlistError`] from netlist construction.
///
/// # Panics
///
/// Panics on invalid widths; see [`SimpleAlu::new`] and [`ComplexAlu::new`].
pub fn build_stage(kind: StageKind, width: usize) -> Result<Box<dyn PipeStage>, NetlistError> {
    Ok(match kind {
        StageKind::Decode => Box::new(DecodeStage::new()?),
        StageKind::SimpleAlu => Box::new(SimpleAlu::new(width)?),
        StageKind::ComplexAlu => Box::new(ComplexAlu::new(width)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_stages() {
        for kind in StageKind::ALL {
            let stage = build_stage(kind, 8).expect("build");
            assert_eq!(stage.kind(), kind);
            assert!(stage.netlist().cell_count() > 10);
            // Encoding must match the netlist input width.
            let ev = AluEvent::new(AluOp::Add, 1, 2);
            assert_eq!(
                stage.encode(&ev).len(),
                stage.netlist().primary_inputs().len(),
                "{kind}: encode width"
            );
        }
    }

    #[test]
    fn stage_names() {
        assert_eq!(StageKind::Decode.to_string(), "Decode");
        assert_eq!(StageKind::SimpleAlu.to_string(), "SimpleALU");
        assert_eq!(StageKind::ComplexAlu.to_string(), "ComplexALU");
    }

    #[test]
    fn acceptance_model() {
        let simple = build_stage(StageKind::SimpleAlu, 8).expect("build");
        let complex = build_stage(StageKind::ComplexAlu, 8).expect("build");
        let decode = build_stage(StageKind::Decode, 8).expect("build");
        for op in AluOp::ALL {
            // Decode and the SimpleALU operand bus see everything; the
            // multiplier is operand-isolated and sees only multiplies.
            assert!(decode.accepts(op));
            assert!(simple.accepts(op));
            assert_eq!(complex.accepts(op), op.is_complex(), "{op}");
        }
    }
}
