//! Low-level netlist fragments: full adders, word gates, trees, comparators,
//! one-hot decoders and priority chains.
//!
//! All fragments operate on a shared [`NetlistBuilder`], take input nets and
//! return output nets, so stage generators compose them freely.

use gatelib::{CellKind, NetId, NetlistBuilder, NetlistError};

/// A full adder; returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates [`NetlistError`] from cell creation (arity is fixed here, so
/// this only fails on malformed net ids).
pub fn full_adder(
    b: &mut NetlistBuilder,
    a: NetId,
    x: NetId,
    cin: NetId,
) -> Result<(NetId, NetId), NetlistError> {
    let sum = b.cell(CellKind::Xor3, &[a, x, cin])?;
    let carry = b.cell(CellKind::Maj3, &[a, x, cin])?;
    Ok((sum, carry))
}

/// Per-bit 2:1 mux over two equal-width words; `sel ? hi : lo`.
///
/// # Errors
///
/// Propagates [`NetlistError`]; also returns
/// [`NetlistError::InputWidthMismatch`] if the words differ in width.
pub fn mux_word(
    b: &mut NetlistBuilder,
    sel: NetId,
    lo: &[NetId],
    hi: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    if lo.len() != hi.len() {
        return Err(NetlistError::InputWidthMismatch {
            expected: lo.len(),
            got: hi.len(),
        });
    }
    lo.iter()
        .zip(hi)
        .map(|(&l, &h)| b.cell(CellKind::Mux2, &[sel, l, h]))
        .collect()
}

/// Balanced OR tree over any number of nets; returns the root.
///
/// # Errors
///
/// Propagates [`NetlistError`]. An empty input yields a constant-0 net.
pub fn or_tree(b: &mut NetlistBuilder, nets: &[NetId]) -> Result<NetId, NetlistError> {
    reduce_tree(b, nets, CellKind::Or2)
}

/// Balanced AND tree over any number of nets; returns the root.
///
/// # Errors
///
/// Propagates [`NetlistError`]. An empty input yields a constant-1 net.
pub fn and_tree(b: &mut NetlistBuilder, nets: &[NetId]) -> Result<NetId, NetlistError> {
    reduce_tree(b, nets, CellKind::And2)
}

fn reduce_tree(
    b: &mut NetlistBuilder,
    nets: &[NetId],
    kind: CellKind,
) -> Result<NetId, NetlistError> {
    match nets.len() {
        0 => {
            if kind == CellKind::And2 {
                b.const1()
            } else {
                b.const0()
            }
        }
        1 => Ok(nets[0]),
        _ => {
            let mut level: Vec<NetId> = nets.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(b.cell(kind, &[pair[0], pair[1]])?);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            Ok(level[0])
        }
    }
}

/// Equality comparator over two equal-width words; output is 1 iff equal.
///
/// # Errors
///
/// Propagates [`NetlistError`]; width mismatch is rejected.
pub fn eq_comparator(
    b: &mut NetlistBuilder,
    x: &[NetId],
    y: &[NetId],
) -> Result<NetId, NetlistError> {
    if x.len() != y.len() {
        return Err(NetlistError::InputWidthMismatch {
            expected: x.len(),
            got: y.len(),
        });
    }
    let eq_bits: Vec<NetId> = x
        .iter()
        .zip(y)
        .map(|(&a, &c)| b.cell(CellKind::Xnor2, &[a, c]))
        .collect::<Result<_, _>>()?;
    and_tree(b, &eq_bits)
}

/// Unsigned magnitude comparator; output is 1 iff `x < y`. Built as a
/// borrow-ripple chain (`borrow_{i+1}` = borrow out of bit i of `x - y`),
/// so like the ripple adder its sensitized delay tracks how far the
/// deciding bit position is from the LSB.
///
/// # Errors
///
/// Propagates [`NetlistError`]; width mismatch is rejected.
pub fn ltu_comparator(
    b: &mut NetlistBuilder,
    x: &[NetId],
    y: &[NetId],
) -> Result<NetId, NetlistError> {
    if x.len() != y.len() || x.is_empty() {
        return Err(NetlistError::InputWidthMismatch {
            expected: x.len(),
            got: y.len(),
        });
    }
    // borrow' = (!x & y) | ((!x | y) & borrow) = maj(!x, y, borrow).
    let mut borrow = b.const0()?;
    for (&xi, &yi) in x.iter().zip(y) {
        let nx = b.cell(CellKind::Inv, &[xi])?;
        borrow = b.cell(CellKind::Maj3, &[nx, yi, borrow])?;
    }
    Ok(borrow)
}

/// Binary-to-one-hot decoder: `sel` (LSB first) selects one of `2^sel.len()`
/// outputs.
///
/// # Errors
///
/// Propagates [`NetlistError`] from cell creation.
pub fn onehot_decoder(b: &mut NetlistBuilder, sel: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
    let n = 1usize << sel.len();
    // Pre-invert each select bit once.
    let inv: Vec<NetId> = sel
        .iter()
        .map(|&s| b.cell(CellKind::Inv, &[s]))
        .collect::<Result<_, _>>()?;
    let mut outs = Vec::with_capacity(n);
    for code in 0..n {
        let terms: Vec<NetId> = sel
            .iter()
            .enumerate()
            .map(|(i, &s)| if (code >> i) & 1 == 1 { s } else { inv[i] })
            .collect();
        outs.push(and_tree(b, &terms)?);
    }
    Ok(outs)
}

/// Ripple priority chain: output k is 1 iff request k is the first asserted
/// request (scanning from index 0). The serial structure gives the decode
/// stage its data-dependent long paths.
///
/// # Errors
///
/// Propagates [`NetlistError`] from cell creation.
pub fn priority_chain(b: &mut NetlistBuilder, req: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
    let mut grants = Vec::with_capacity(req.len());
    // none_before ripples down the chain: and of inverted requests.
    let mut none_before: Option<NetId> = None;
    for &r in req {
        let g = match none_before {
            None => r,
            Some(nb) => b.cell(CellKind::And2, &[nb, r])?,
        };
        grants.push(g);
        let not_r = b.cell(CellKind::Inv, &[r])?;
        none_before = Some(match none_before {
            None => not_r,
            Some(nb) => b.cell(CellKind::And2, &[nb, not_r])?,
        });
    }
    Ok(grants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatelib::Netlist;

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        n.evaluate(inputs).expect("width matches")
    }

    #[test]
    fn ltu_comparator_exhaustive_4bit() {
        let mut b = NetlistBuilder::new("ltu");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let lt = ltu_comparator(&mut b, &x, &y).expect("ok");
        b.output(lt, "lt");
        let n = b.finish().expect("valid");
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push((xv >> i) & 1 == 1);
                }
                for i in 0..4 {
                    inputs.push((yv >> i) & 1 == 1);
                }
                let out = eval(&n, &inputs);
                assert_eq!(out[0], xv < yv, "{xv} < {yv}");
            }
        }
    }

    #[test]
    fn ltu_comparator_rejects_mismatch() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 3);
        assert!(ltu_comparator(&mut b, &x, &y).is_err());
        let empty: Vec<gatelib::NetId> = Vec::new();
        assert!(ltu_comparator(&mut b, &empty, &empty).is_err());
    }

    #[test]
    fn or_and_trees() {
        let mut b = NetlistBuilder::new("trees");
        let xs = b.input_bus("x", 5);
        let o = or_tree(&mut b, &xs).expect("ok");
        let a = and_tree(&mut b, &xs).expect("ok");
        b.output(o, "or");
        b.output(a, "and");
        let n = b.finish().expect("valid");
        assert_eq!(eval(&n, &[false; 5]), vec![false, false]);
        assert_eq!(eval(&n, &[true; 5]), vec![true, true]);
        assert_eq!(
            eval(&n, &[true, false, false, false, false]),
            vec![true, false]
        );
    }

    #[test]
    fn empty_trees_are_constants() {
        let mut b = NetlistBuilder::new("empty");
        let o = or_tree(&mut b, &[]).expect("ok");
        let a = and_tree(&mut b, &[]).expect("ok");
        b.output(o, "or");
        b.output(a, "and");
        let n = b.finish().expect("valid");
        assert_eq!(eval(&n, &[]), vec![false, true]);
    }

    #[test]
    fn comparator_matches_equality() {
        let mut b = NetlistBuilder::new("eq");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let e = eq_comparator(&mut b, &x, &y).expect("ok");
        b.output(e, "eq");
        let n = b.finish().expect("valid");
        for (xa, ya) in [(3u8, 3u8), (3, 5), (0, 0), (15, 14)] {
            let mut inputs = Vec::new();
            for i in 0..4 {
                inputs.push((xa >> i) & 1 == 1);
            }
            for i in 0..4 {
                inputs.push((ya >> i) & 1 == 1);
            }
            assert_eq!(eval(&n, &inputs), vec![xa == ya], "{xa} vs {ya}");
        }
    }

    #[test]
    fn onehot_decoder_is_onehot() {
        let mut b = NetlistBuilder::new("dec");
        let sel = b.input_bus("s", 3);
        let outs = onehot_decoder(&mut b, &sel).expect("ok");
        b.output_bus(&outs, "o");
        let n = b.finish().expect("valid");
        for code in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| (code >> i) & 1 == 1).collect();
            let out = eval(&n, &inputs);
            for (k, &bit) in out.iter().enumerate() {
                assert_eq!(bit, k == code, "code {code}, line {k}");
            }
        }
    }

    #[test]
    fn priority_chain_grants_first_request() {
        let mut b = NetlistBuilder::new("prio");
        let req = b.input_bus("r", 4);
        let grants = priority_chain(&mut b, &req).expect("ok");
        b.output_bus(&grants, "g");
        let n = b.finish().expect("valid");
        // Requests 1 and 3 asserted: only 1 wins.
        let out = eval(&n, &[false, true, false, true]);
        assert_eq!(out, vec![false, true, false, false]);
        // Nothing asserted: nothing granted.
        assert_eq!(eval(&n, &[false; 4]), vec![false; 4]);
        // All asserted: index 0 wins.
        assert_eq!(eval(&n, &[true; 4]), vec![true, false, false, false]);
    }

    #[test]
    fn mux_word_selects() {
        let mut b = NetlistBuilder::new("mux");
        let s = b.input("s");
        let lo = b.input_bus("lo", 3);
        let hi = b.input_bus("hi", 3);
        let out = mux_word(&mut b, s, &lo, &hi).expect("ok");
        b.output_bus(&out, "o");
        let n = b.finish().expect("valid");
        // sel=0 -> lo (101), sel=1 -> hi (010)
        let v = eval(&n, &[false, true, false, true, false, true, false]);
        assert_eq!(v, vec![true, false, true]);
        let v = eval(&n, &[true, true, false, true, false, true, false]);
        assert_eq!(v, vec![false, true, false]);
    }

    #[test]
    fn mux_word_rejects_mismatch() {
        let mut b = NetlistBuilder::new("bad");
        let s = b.input("s");
        let lo = b.input_bus("lo", 3);
        let hi = b.input_bus("hi", 2);
        assert!(mux_word(&mut b, s, &lo, &hi).is_err());
    }
}
