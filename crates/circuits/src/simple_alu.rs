//! The SimpleALU pipe stage: add/sub/logic/shift/compare.
//!
//! Input layout: `[op[3], a[W], b[W]]` (opcode binary, operands LSB first).
//! Output layout: `[result[W], carry_out, zero]`.

use gatelib::{CellKind, NetId, Netlist, NetlistBuilder, NetlistError};

use crate::adder::AdderKind;
use crate::ops::{AluEvent, AluOp};
use crate::prims::{onehot_decoder, or_tree};
use crate::shifter::{barrel_shifter, ShiftDirection};
use crate::stage::{PipeStage, StageKind};

/// Gate-level simple integer ALU of configurable width and adder topology.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct SimpleAlu {
    width: usize,
    adder: AdderKind,
    netlist: Netlist,
}

impl SimpleAlu {
    /// Builds a SimpleALU with the default (Kogge-Stone) adder.
    ///
    /// Production ALUs use logarithmic-depth adders, which keeps the
    /// *typical* sensitized path a large fraction of the critical path —
    /// the precondition for the smooth error-probability curves the paper
    /// observes (Fig 3.5). The serial topologies remain available through
    /// [`SimpleAlu::with_adder`] for the adder-topology ablation bench.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from netlist construction.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two in `4..=64` (the barrel
    /// shifter requires it).
    pub fn new(width: usize) -> Result<SimpleAlu, NetlistError> {
        SimpleAlu::with_adder(width, AdderKind::KoggeStone)
    }

    /// Builds a SimpleALU with an explicit adder topology (for ablations).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from netlist construction.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two in `4..=64`.
    pub fn with_adder(width: usize, adder: AdderKind) -> Result<SimpleAlu, NetlistError> {
        assert!(
            width.is_power_of_two() && (4..=64).contains(&width),
            "width must be a power of two in 4..=64"
        );
        let mut b = NetlistBuilder::new(format!("simple_alu{width}"));
        let op = b.input_bus("op", 3);
        let a = b.input_bus("a", width);
        let x = b.input_bus("b", width);

        // One-hot op select: Add,Sub,And,Or,Xor,Shl,Shr,Sltu.
        let dec = onehot_decoder(&mut b, &op)?;
        let (d_add, d_sub, d_and, d_or, d_xor, d_shl, d_shr, d_slt) = (
            dec[0], dec[1], dec[2], dec[3], dec[4], dec[5], dec[6], dec[7],
        );

        // Adder/subtractor: b is conditionally inverted, cin = subtract.
        let subtract = b.cell(CellKind::Or2, &[d_sub, d_slt])?;
        let x_eff: Vec<NetId> = x
            .iter()
            .map(|&xi| b.cell(CellKind::Xor2, &[xi, subtract]))
            .collect::<Result<_, _>>()?;
        let (sum, cout) = adder.build(&mut b, &a, &x_eff, subtract)?;
        // Unsigned a < b  <=>  no carry out of a - b.
        let sltu_bit = b.cell(CellKind::Inv, &[cout])?;

        // Logic words.
        let and_w: Vec<NetId> = a
            .iter()
            .zip(&x)
            .map(|(&ai, &xi)| b.cell(CellKind::And2, &[ai, xi]))
            .collect::<Result<_, _>>()?;
        let or_w: Vec<NetId> = a
            .iter()
            .zip(&x)
            .map(|(&ai, &xi)| b.cell(CellKind::Or2, &[ai, xi]))
            .collect::<Result<_, _>>()?;
        let xor_w: Vec<NetId> = a
            .iter()
            .zip(&x)
            .map(|(&ai, &xi)| b.cell(CellKind::Xor2, &[ai, xi]))
            .collect::<Result<_, _>>()?;

        // Shifter (amount = low log2(W) bits of b).
        let amt = &x[..width.trailing_zeros() as usize];
        let shl = barrel_shifter(&mut b, &a, amt, ShiftDirection::Left)?;
        let shr = barrel_shifter(&mut b, &a, amt, ShiftDirection::Right)?;

        // Result mux: and/or network keyed by the one-hot selects.
        let arith = b.cell(CellKind::Or2, &[d_add, d_sub])?;
        let mut result = Vec::with_capacity(width);
        for i in 0..width {
            let mut terms = vec![
                b.cell(CellKind::And2, &[arith, sum[i]])?,
                b.cell(CellKind::And2, &[d_and, and_w[i]])?,
                b.cell(CellKind::And2, &[d_or, or_w[i]])?,
                b.cell(CellKind::And2, &[d_xor, xor_w[i]])?,
                b.cell(CellKind::And2, &[d_shl, shl[i]])?,
                b.cell(CellKind::And2, &[d_shr, shr[i]])?,
            ];
            if i == 0 {
                terms.push(b.cell(CellKind::And2, &[d_slt, sltu_bit])?);
            }
            result.push(or_tree(&mut b, &terms)?);
        }

        // Flags.
        let any = or_tree(&mut b, &result)?;
        let zero = b.cell(CellKind::Inv, &[any])?;

        b.output_bus(&result, "r");
        b.output(cout, "cout");
        b.output(zero, "zero");
        Ok(SimpleAlu {
            width,
            adder,
            netlist: b.finish()?,
        })
    }

    /// The adder topology in use.
    #[must_use]
    pub fn adder_kind(&self) -> AdderKind {
        self.adder
    }

    /// Decodes the result field from a simulated output vector.
    #[must_use]
    pub fn result_of(&self, outputs: &[bool]) -> u64 {
        outputs
            .iter()
            .take(self.width)
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }
}

impl PipeStage for SimpleAlu {
    fn kind(&self) -> StageKind {
        StageKind::SimpleAlu
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn width(&self) -> usize {
        self.width
    }

    fn accepts(&self, op: AluOp) -> bool {
        // The SimpleALU sits on the main operand bypass: every
        // instruction's operands latch at its inputs (no operand
        // isolation), so every event sensitizes paths here.
        let _ = op;
        true
    }

    fn encode_into(&self, ev: &AluEvent, buf: &mut Vec<bool>) {
        // Complex ops never execute here; fall back to Add so the encoding
        // stays total (callers filter with `accepts` first).
        let idx = if ev.op.is_complex() { 0 } else { ev.op.index() };
        buf.clear();
        buf.reserve(3 + 2 * self.width);
        for i in 0..3 {
            buf.push((idx >> i) & 1 == 1);
        }
        for i in 0..self.width {
            buf.push((ev.a >> i) & 1 == 1);
        }
        for i in 0..self.width {
            buf.push((ev.b >> i) & 1 == 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatelib::{TimingSim, Voltage};

    const SIMPLE_OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sltu,
    ];

    #[test]
    fn matches_reference_semantics_8bit() {
        let alu = SimpleAlu::new(8).expect("build");
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let op = SIMPLE_OPS[(state >> 60) as usize % 8];
            let a = state & 0xFF;
            let b = (state >> 8) & 0xFF;
            let ev = AluEvent::new(op, a, b);
            let out = alu.netlist().evaluate(&alu.encode(&ev)).expect("ok");
            assert_eq!(alu.result_of(&out), ev.result(8), "{op} {a} {b}");
        }
    }

    #[test]
    fn zero_flag_and_carry() {
        let alu = SimpleAlu::new(8).expect("build");
        // 5 - 5 = 0 sets zero flag; a >= b sets carry on subtract.
        let out = alu
            .netlist()
            .evaluate(&alu.encode(&AluEvent::new(AluOp::Sub, 5, 5)))
            .expect("ok");
        assert!(out[9], "zero flag should be set");
        assert!(out[8], "carry (no borrow) should be set");
        // 3 - 5 borrows: carry clear.
        let out = alu
            .netlist()
            .evaluate(&alu.encode(&AluEvent::new(AluOp::Sub, 3, 5)))
            .expect("ok");
        assert!(!out[8], "borrow should clear carry");
    }

    #[test]
    fn sltu_boundary_cases() {
        let alu = SimpleAlu::new(8).expect("build");
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (255, 255), (254, 255)] {
            let ev = AluEvent::new(AluOp::Sltu, a, b);
            let out = alu.netlist().evaluate(&alu.encode(&ev)).expect("ok");
            assert_eq!(alu.result_of(&out), u64::from(a < b), "{a} < {b}");
        }
    }

    #[test]
    fn all_adder_kinds_agree() {
        let alus: Vec<SimpleAlu> = AdderKind::ALL
            .iter()
            .map(|&k| SimpleAlu::with_adder(8, k).expect("build"))
            .collect();
        let mut state = 0xabcdefu64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let op = SIMPLE_OPS[(state >> 59) as usize % 8];
            let ev = AluEvent::new(op, state & 0xFF, (state >> 8) & 0xFF);
            let reference = alus[0].result_of(
                &alus[0]
                    .netlist()
                    .evaluate(&alus[0].encode(&ev))
                    .expect("ok"),
            );
            for alu in &alus[1..] {
                let r = alu.result_of(&alu.netlist().evaluate(&alu.encode(&ev)).expect("ok"));
                assert_eq!(r, reference, "{:?} disagrees on {ev:?}", alu.adder_kind());
            }
        }
    }

    #[test]
    fn add_delay_depends_on_operands() {
        // With the ripple adder, a full-width carry ripple is maximally
        // slower than a 2-bit add — the cleanest demonstration of
        // data-dependent sensitized delay.
        let alu = SimpleAlu::with_adder(16, AdderKind::Ripple).expect("build");
        let mut sim = TimingSim::new(alu.netlist(), Voltage::NOMINAL).expect("sim");
        sim.apply(&alu.encode(&AluEvent::new(AluOp::Add, 0, 0)))
            .expect("init");
        let long = sim
            .apply(&alu.encode(&AluEvent::new(AluOp::Add, 0xFFFF, 1)))
            .expect("ok")
            .delay;
        sim.apply(&alu.encode(&AluEvent::new(AluOp::Add, 0, 0)))
            .expect("reset");
        let short = sim
            .apply(&alu.encode(&AluEvent::new(AluOp::Add, 1, 2)))
            .expect("ok")
            .delay;
        assert!(long > short, "long-carry add must be slower");
    }

    #[test]
    fn accepts_every_op_on_the_operand_bus() {
        let alu = SimpleAlu::new(8).expect("build");
        for op in AluOp::ALL {
            assert!(alu.accepts(op), "{op}: no operand isolation here");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_width_panics() {
        let _ = SimpleAlu::new(12);
    }
}
