//! The ComplexALU pipe stage: the array multiplier (low/high half select).
//!
//! Input layout: `[hi_sel, a[W], b[W]]`.
//! Output layout: `[result[W], overflow]` where `overflow` is the OR of the
//! discarded upper product bits in low-half mode.

use gatelib::{CellKind, Netlist, NetlistBuilder, NetlistError};

use crate::multiplier::array_multiplier;
use crate::ops::{AluEvent, AluOp};
use crate::prims::{mux_word, or_tree};
use crate::stage::{PipeStage, StageKind};

/// Gate-level multiplier stage of configurable width.
///
/// ```
/// use circuits::{AluEvent, AluOp, ComplexAlu, PipeStage};
///
/// # fn main() -> Result<(), gatelib::NetlistError> {
/// let alu = ComplexAlu::new(8)?;
/// let ev = AluEvent::new(AluOp::Mul, 12, 11);
/// let out = alu.netlist().evaluate(&alu.encode(&ev))?;
/// assert_eq!(alu.result_of(&out), 132);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ComplexAlu {
    width: usize,
    netlist: Netlist,
}

impl ComplexAlu {
    /// Builds a ComplexALU.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from netlist construction.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `4..=32` (the full product must fit the
    /// 64-bit helper encodings).
    pub fn new(width: usize) -> Result<ComplexAlu, NetlistError> {
        assert!((4..=32).contains(&width), "width must be in 4..=32");
        let mut b = NetlistBuilder::new(format!("complex_alu{width}"));
        let hi_sel = b.input("hi_sel");
        let a = b.input_bus("a", width);
        let x = b.input_bus("b", width);
        let product = array_multiplier(&mut b, &a, &x)?;
        let lo = &product[..width];
        let hi = &product[width..];
        let result = mux_word(&mut b, hi_sel, lo, hi)?;
        // Overflow indicator: any upper bit set (meaningful in low mode).
        let any_hi = or_tree(&mut b, hi)?;
        let not_hi_sel = b.cell(CellKind::Inv, &[hi_sel])?;
        let overflow = b.cell(CellKind::And2, &[any_hi, not_hi_sel])?;
        b.output_bus(&result, "r");
        b.output(overflow, "ovf");
        Ok(ComplexAlu {
            width,
            netlist: b.finish()?,
        })
    }

    /// Decodes the result field from a simulated output vector.
    #[must_use]
    pub fn result_of(&self, outputs: &[bool]) -> u64 {
        outputs
            .iter()
            .take(self.width)
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }
}

impl PipeStage for ComplexAlu {
    fn kind(&self) -> StageKind {
        StageKind::ComplexAlu
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn width(&self) -> usize {
        self.width
    }

    fn accepts(&self, op: AluOp) -> bool {
        // The multiplier is operand-isolated (standard low-power design):
        // its input latches only open for multiply instructions, so only
        // those sensitize paths here.
        op.is_complex()
    }

    fn encode_into(&self, ev: &AluEvent, buf: &mut Vec<bool>) {
        buf.clear();
        buf.reserve(1 + 2 * self.width);
        buf.push(ev.op == AluOp::MulHi);
        for i in 0..self.width {
            buf.push((ev.a >> i) & 1 == 1);
        }
        for i in 0..self.width {
            buf.push((ev.b >> i) & 1 == 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_half_matches_reference() {
        let alu = ComplexAlu::new(8).expect("build");
        let mut state = 0x243f6a8885a308d3u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ev = AluEvent::new(AluOp::Mul, state & 0xFF, (state >> 8) & 0xFF);
            let out = alu.netlist().evaluate(&alu.encode(&ev)).expect("ok");
            assert_eq!(alu.result_of(&out), ev.result(8), "{} * {}", ev.a, ev.b);
        }
    }

    #[test]
    fn high_half_matches_reference() {
        let alu = ComplexAlu::new(8).expect("build");
        for (a, b) in [(0xFFu64, 0xFFu64), (0x80, 0x80), (13, 200), (1, 1)] {
            let ev = AluEvent::new(AluOp::MulHi, a, b);
            let out = alu.netlist().evaluate(&alu.encode(&ev)).expect("ok");
            assert_eq!(alu.result_of(&out), (a * b) >> 8, "{a} mulhi {b}");
        }
    }

    #[test]
    fn overflow_flag_tracks_upper_bits() {
        let alu = ComplexAlu::new(8).expect("build");
        // 16 * 16 = 256: upper half nonzero, low-mode overflow set.
        let out = alu
            .netlist()
            .evaluate(&alu.encode(&AluEvent::new(AluOp::Mul, 16, 16)))
            .expect("ok");
        assert!(out[8], "overflow expected");
        // 3 * 4 = 12: fits, no overflow.
        let out = alu
            .netlist()
            .evaluate(&alu.encode(&AluEvent::new(AluOp::Mul, 3, 4)))
            .expect("ok");
        assert!(!out[8], "no overflow expected");
    }

    #[test]
    fn accepts_only_complex_ops() {
        let alu = ComplexAlu::new(8).expect("build");
        assert!(alu.accepts(AluOp::Mul));
        assert!(alu.accepts(AluOp::MulHi));
        assert!(!alu.accepts(AluOp::Add));
    }

    #[test]
    fn deeper_than_simple_alu() {
        use gatelib::{StaticTiming, Voltage};
        let complex = ComplexAlu::new(8).expect("build");
        let simple = crate::SimpleAlu::new(8).expect("build");
        let tc = StaticTiming::analyze(complex.netlist(), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        let ts = StaticTiming::analyze(simple.netlist(), Voltage::NOMINAL)
            .expect("sta")
            .nominal_period();
        assert!(tc > ts, "multiplier {tc} should be deeper than ALU {ts}");
    }
}
