//! The ALU operation vocabulary shared by workloads, stages and the
//! architectural simulator.
//!
//! A dynamic instruction, for timing purposes, is an [`AluEvent`]: an
//! operation plus its two operand values. Workload kernels emit streams of
//! events; stage circuits encode them into input vectors; the timing layer
//! turns consecutive vectors into sensitized delays.

/// Integer operations executed by the pipeline's functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `b mod width`.
    Shl,
    /// Logical shift right by `b mod width`.
    Shr,
    /// Unsigned set-less-than (1 if `a < b`).
    Sltu,
    /// Multiplication, low half of the product.
    Mul,
    /// Multiplication, high half of the product.
    MulHi,
}

impl AluOp {
    /// All operations, in opcode order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sltu,
        AluOp::Mul,
        AluOp::MulHi,
    ];

    /// Opcode index (position in [`AluOp::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        AluOp::ALL
            .iter()
            .position(|&k| k == self)
            .expect("ALL covers every variant")
    }

    /// Whether the op executes on the ComplexALU (multiplier) rather than
    /// the SimpleALU.
    #[must_use]
    pub const fn is_complex(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::MulHi)
    }

    /// Reference semantics at the given datapath width (1..=64 bits):
    /// the golden model the gate-level stages are tested against.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn eval(self, a: u64, b: u64, width: usize) -> u64 {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let a = a & mask;
        let b = b & mask;
        let sh = (b as u32) % (width as u32);
        let r = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << sh,
            AluOp::Shr => a >> sh,
            AluOp::Sltu => u64::from(a < b),
            AluOp::Mul => (a as u128).wrapping_mul(b as u128) as u64,
            AluOp::MulHi => (((a as u128) * (b as u128)) >> width) as u64,
        };
        r & mask
    }
}

impl std::fmt::Display for AluOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::MulHi => "mulhi",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction's timing-relevant content: the operation and the
/// operand values it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AluEvent {
    /// The operation.
    pub op: AluOp,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

impl AluEvent {
    /// Creates an event.
    #[must_use]
    pub fn new(op: AluOp, a: u64, b: u64) -> AluEvent {
        AluEvent { op, a, b }
    }

    /// The reference result at `width` bits (see [`AluOp::eval`]).
    #[must_use]
    pub fn result(&self, width: usize) -> u64 {
        self.op.eval(self.a, self.b, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_indices_are_stable() {
        for (i, op) in AluOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn complex_classification() {
        assert!(AluOp::Mul.is_complex());
        assert!(AluOp::MulHi.is_complex());
        assert!(!AluOp::Add.is_complex());
        assert!(!AluOp::Shr.is_complex());
    }

    #[test]
    fn reference_semantics_masks_to_width() {
        assert_eq!(AluOp::Add.eval(0xFF, 1, 8), 0);
        assert_eq!(AluOp::Sub.eval(0, 1, 8), 0xFF);
        assert_eq!(AluOp::Shl.eval(1, 9, 8), 2); // shift by 9 mod 8 = 1
        assert_eq!(AluOp::Sltu.eval(3, 5, 8), 1);
        assert_eq!(AluOp::Sltu.eval(5, 3, 8), 0);
    }

    #[test]
    fn multiplication_high_and_low_halves() {
        // 0xFF * 0xFF = 0xFE01 at 8-bit width.
        assert_eq!(AluOp::Mul.eval(0xFF, 0xFF, 8), 0x01);
        assert_eq!(AluOp::MulHi.eval(0xFF, 0xFF, 8), 0xFE);
        // Full width 64 multiply low half.
        assert_eq!(AluOp::Mul.eval(u64::MAX, 2, 64), u64::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        let _ = AluOp::Add.eval(1, 1, 0);
    }

    #[test]
    fn event_result_delegates() {
        let ev = AluEvent::new(AluOp::Xor, 0b1100, 0b1010);
        assert_eq!(ev.result(4), 0b0110);
    }
}
