//! Logarithmic barrel shifter for the SimpleALU's shift operations.

use gatelib::{NetId, NetlistBuilder, NetlistError};

use crate::prims::mux_word;

/// Shift direction for [`barrel_shifter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDirection {
    /// Towards the MSB, zero-filling from the LSB.
    Left,
    /// Towards the LSB, zero-filling from the MSB.
    Right,
}

/// Logical barrel shifter: shifts `data` by the binary amount `amount`
/// (LSB first, `log2(width)` bits), zero filling.
///
/// # Errors
///
/// Propagates [`NetlistError`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two or `amount.len()` is not
/// exactly `log2(data.len())` — stage generators guarantee both.
pub fn barrel_shifter(
    b: &mut NetlistBuilder,
    data: &[NetId],
    amount: &[NetId],
    direction: ShiftDirection,
) -> Result<Vec<NetId>, NetlistError> {
    let w = data.len();
    assert!(
        w.is_power_of_two(),
        "barrel shifter requires power-of-two width"
    );
    assert_eq!(
        amount.len(),
        w.trailing_zeros() as usize,
        "amount must have log2(width) bits"
    );
    let zero = b.const0()?;
    let mut current: Vec<NetId> = data.to_vec();
    for (k, &sel) in amount.iter().enumerate() {
        let dist = 1usize << k;
        let shifted: Vec<NetId> = (0..w)
            .map(|i| match direction {
                ShiftDirection::Left => {
                    if i >= dist {
                        current[i - dist]
                    } else {
                        zero
                    }
                }
                ShiftDirection::Right => {
                    if i + dist < w {
                        current[i + dist]
                    } else {
                        zero
                    }
                }
            })
            .collect();
        current = mux_word(b, sel, &current, &shifted)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatelib::Netlist;

    fn build(w: usize, dir: ShiftDirection) -> Netlist {
        let mut b = NetlistBuilder::new("shift");
        let d = b.input_bus("d", w);
        let amt = b.input_bus("amt", w.trailing_zeros() as usize);
        let out = barrel_shifter(&mut b, &d, &amt, dir).expect("ok");
        b.output_bus(&out, "o");
        b.finish().expect("valid")
    }

    fn run(n: &Netlist, w: usize, data: u64, amt: u64) -> u64 {
        let mut inputs = Vec::new();
        for i in 0..w {
            inputs.push((data >> i) & 1 == 1);
        }
        for i in 0..w.trailing_zeros() as usize {
            inputs.push((amt >> i) & 1 == 1);
        }
        n.evaluate(&inputs)
            .expect("ok")
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }

    #[test]
    fn left_shift_exhaustive_8bit() {
        let n = build(8, ShiftDirection::Left);
        for data in [0u64, 1, 0x80, 0xA5, 0xFF] {
            for amt in 0..8 {
                assert_eq!(
                    run(&n, 8, data, amt),
                    (data << amt) & 0xFF,
                    "{data} << {amt}"
                );
            }
        }
    }

    #[test]
    fn right_shift_exhaustive_8bit() {
        let n = build(8, ShiftDirection::Right);
        for data in [0u64, 1, 0x80, 0xA5, 0xFF] {
            for amt in 0..8 {
                assert_eq!(run(&n, 8, data, amt), data >> amt, "{data} >> {amt}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_width_panics() {
        let mut b = NetlistBuilder::new("bad");
        let d = b.input_bus("d", 6);
        let amt = b.input_bus("amt", 3);
        let _ = barrel_shifter(&mut b, &d, &amt, ShiftDirection::Left);
    }
}
