//! The Decode pipe stage: opcode classification, operand-field comparators
//! and grant/priority logic for a 32-bit instruction word.
//!
//! Input layout: one 32-bit instruction word
//! `[imm16 (0..16), rb (16..21), ra (21..26), opcode (26..32)]`.
//!
//! Outputs: unit-class signals, register-dependence hint, immediate
//! summary signals and a 16-line grant vector from a serial priority chain
//! (the chain provides the long, opcode-dependent paths that give decode its
//! spread of sensitized delays).

use gatelib::{CellKind, Netlist, NetlistBuilder, NetlistError};

use crate::ops::{AluEvent, AluOp};
use crate::prims::{eq_comparator, onehot_decoder, or_tree, priority_chain};
use crate::stage::{PipeStage, StageKind};

/// Width of the instruction word consumed by the decode stage.
pub const INSTR_BITS: usize = 32;

/// Gate-level instruction decoder stage.
///
/// ```
/// use circuits::{AluEvent, AluOp, DecodeStage, PipeStage};
///
/// # fn main() -> Result<(), gatelib::NetlistError> {
/// let dec = DecodeStage::new()?;
/// let ev = AluEvent::new(AluOp::Add, 7, 9);
/// let out = dec.netlist().evaluate(&dec.encode(&ev))?;
/// assert!(out[0]); // an Add classifies as a simple-ALU instruction
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecodeStage {
    netlist: Netlist,
}

impl DecodeStage {
    /// Builds the decode stage netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from netlist construction.
    pub fn new() -> Result<DecodeStage, NetlistError> {
        let mut b = NetlistBuilder::new("decode");
        let instr = b.input_bus("instr", INSTR_BITS);
        let imm16 = &instr[0..16];
        let rb = &instr[16..21];
        let ra = &instr[21..26];
        let opcode = &instr[26..32];

        // 4-bit primary opcode -> 16 one-hot lines.
        let lines = onehot_decoder(&mut b, &opcode[..4])?;

        // Unit classes. Opcodes 0..8 = simple ALU, 8..10 = complex ALU,
        // 10 = load, 11 = store, 12 = branch, 13 = jump, 14 = nop,
        // 15 = barrier.
        let is_simple = or_tree(&mut b, &lines[0..8])?;
        let is_complex = b.cell(CellKind::Or2, &[lines[8], lines[9]])?;
        let is_load = lines[10];
        let is_store = lines[11];
        let is_branch = lines[12];
        let is_jump = lines[13];
        let is_nop = lines[14];
        let is_barrier = lines[15];

        // Writeback control.
        let alu_like = b.cell(CellKind::Or2, &[is_simple, is_complex])?;
        let writes_reg = b.cell(CellKind::Or2, &[alu_like, is_load])?;
        // Immediate form flag comes straight from opcode bit 4.
        let uses_imm = opcode[4];

        // Dependence hint: ra == rb means the consumer reads what it writes.
        let same_reg = eq_comparator(&mut b, ra, rb)?;

        // Immediate summaries.
        let imm_nonzero = or_tree(&mut b, imm16)?;
        let imm_sign = imm16[15];

        // Serial grant chain over the one-hot lines, qualified by the
        // "valid" bit (opcode bit 5): the data-dependent long path. As in
        // real arbiters, *exceptional* classes (barrier, nop, jump, branch)
        // get chain priority, so the frequent ALU opcodes sit at the deep
        // end of the chain and sensitize its full length.
        let valid = opcode[5];
        let qualified: Vec<_> = lines
            .iter()
            .rev()
            .map(|&l| b.cell(CellKind::And2, &[l, valid]))
            .collect::<Result<Vec<_>, _>>()?;
        let mut grants = priority_chain(&mut b, &qualified)?;
        grants.reverse(); // back to opcode order

        b.output(is_simple, "is_simple");
        b.output(is_complex, "is_complex");
        b.output(is_load, "is_load");
        b.output(is_store, "is_store");
        b.output(is_branch, "is_branch");
        b.output(is_jump, "is_jump");
        b.output(is_nop, "is_nop");
        b.output(is_barrier, "is_barrier");
        // Leading-one detector over the immediate (the classifier that
        // picks sign-extension/scaling behaviour): a serial priority scan
        // from the MSB whose sensitized depth tracks the *magnitude* of the
        // immediate — small immediates ripple the whole chain. This is the
        // stage's second long data-dependent path.
        let imm_msb_first: Vec<_> = imm16.iter().rev().copied().collect();
        let lead = priority_chain(&mut b, &imm_msb_first)?;

        b.output(writes_reg, "writes_reg");
        b.output(uses_imm, "uses_imm");
        b.output(same_reg, "same_reg");
        b.output(imm_nonzero, "imm_nonzero");
        b.output(imm_sign, "imm_sign");
        b.output_bus(&grants, "grant");
        b.output_bus(&lead, "lead");
        Ok(DecodeStage {
            netlist: b.finish()?,
        })
    }

    /// Synthesizes the 32-bit instruction word the decoder would see for a
    /// dynamic event: opcode from the operation, register fields and
    /// immediate derived from the operand values (compiler-assigned fields
    /// correlate with the data a thread touches; this keeps that
    /// correlation).
    #[must_use]
    pub fn instruction_word(ev: &AluEvent) -> u32 {
        let opcode4 = (ev.op.index() as u32) & 0xF;
        let uses_imm = u32::from(ev.b < (1 << 12));
        let valid = 1u32;
        let opcode = opcode4 | (uses_imm << 4) | (valid << 5);
        let ra = ((ev.a ^ (ev.a >> 5)) & 0x1F) as u32;
        let rb = ((ev.b ^ (ev.b >> 5)) & 0x1F) as u32;
        let imm16 = (ev.b & 0xFFFF) as u32;
        imm16 | (rb << 16) | (ra << 21) | (opcode << 26)
    }
}

impl PipeStage for DecodeStage {
    fn kind(&self) -> StageKind {
        StageKind::Decode
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn width(&self) -> usize {
        INSTR_BITS
    }

    fn accepts(&self, _op: AluOp) -> bool {
        true // every instruction passes through decode
    }

    fn encode_into(&self, ev: &AluEvent, buf: &mut Vec<bool>) {
        let word = DecodeStage::instruction_word(ev);
        buf.clear();
        buf.extend((0..INSTR_BITS).map(|i| (word >> i) & 1 == 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs_for(ev: &AluEvent) -> Vec<bool> {
        let dec = DecodeStage::new().expect("build");
        dec.netlist().evaluate(&dec.encode(ev)).expect("ok")
    }

    #[test]
    fn simple_ops_classify_as_simple() {
        for op in [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Sltu] {
            let out = outputs_for(&AluEvent::new(op, 3, 4));
            assert!(out[0], "{op} should be is_simple");
            assert!(!out[1], "{op} should not be is_complex");
            assert!(out[8], "{op} writes a register");
        }
    }

    #[test]
    fn complex_ops_classify_as_complex() {
        for op in [AluOp::Mul, AluOp::MulHi] {
            let out = outputs_for(&AluEvent::new(op, 3, 4));
            assert!(!out[0], "{op} should not be is_simple");
            assert!(out[1], "{op} should be is_complex");
        }
    }

    #[test]
    fn uses_imm_tracks_operand_magnitude() {
        let small = outputs_for(&AluEvent::new(AluOp::Add, 5, 100));
        assert!(small[9], "small second operand implies immediate form");
        let big = outputs_for(&AluEvent::new(AluOp::Add, 5, 1 << 20));
        assert!(!big[9], "large second operand implies register form");
    }

    #[test]
    fn grant_vector_is_onehot_for_valid_instructions() {
        let dec = DecodeStage::new().expect("build");
        for op in AluOp::ALL {
            let out = dec
                .netlist()
                .evaluate(&dec.encode(&AluEvent::new(op, 17, 23)))
                .expect("ok");
            let grants = &out[13..29];
            let count = grants.iter().filter(|&&g| g).count();
            assert_eq!(count, 1, "{op}: exactly one grant line");
            assert!(grants[op.index()], "{op}: grant matches opcode line");
        }
    }

    #[test]
    fn same_reg_hint() {
        // Force ra == rb by giving both operands the same value.
        let out = outputs_for(&AluEvent::new(AluOp::Add, 42, 42));
        assert!(out[10], "identical field hashes must compare equal");
    }

    #[test]
    fn imm_summaries() {
        let out = outputs_for(&AluEvent::new(AluOp::Add, 1, 0));
        assert!(!out[11], "imm_nonzero clear for zero immediate");
        let out = outputs_for(&AluEvent::new(AluOp::Add, 1, 0x8000));
        assert!(out[11], "imm_nonzero set");
        assert!(out[12], "imm_sign set for bit 15");
    }

    #[test]
    fn instruction_word_fields_pack_correctly() {
        let ev = AluEvent::new(AluOp::Sub, 0, 0xFFFF_FFFF);
        let w = DecodeStage::instruction_word(&ev);
        assert_eq!(w & 0xFFFF, 0xFFFF, "imm16 field");
        assert_eq!((w >> 26) & 0xF, 1, "opcode index of Sub");
        assert_eq!((w >> 30) & 1, 0, "large operand clears uses_imm");
        assert_eq!(w >> 31, 1, "valid bit set");
    }
}
