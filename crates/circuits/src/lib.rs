//! # circuits — gate-level pipe-stage netlists for SynTS
//!
//! Generators for the three pipeline stages the paper analyzes — **Decode**,
//! **SimpleALU** and **ComplexALU** (Sec 5.3) — plus the arithmetic building
//! blocks they are made of (ripple / carry-lookahead /
//! Kogge-Stone / carry-select / carry-skip adders, array / Wallace / Dadda
//! multipliers, a barrel shifter, comparators and decoders).
//!
//! Each stage implements [`PipeStage`]: it owns a [`gatelib::Netlist`] and
//! knows how to encode an [`AluEvent`] (one dynamic instruction's operands)
//! into the stage's input vector. Feeding consecutive encoded events to a
//! [`gatelib::TimingSim`] yields the per-instruction sensitized delays that
//! drive the whole SynTS analysis.
//!
//! ```
//! use circuits::{AluEvent, AluOp, PipeStage, SimpleAlu};
//! use gatelib::{TimingSim, Voltage};
//!
//! # fn main() -> Result<(), gatelib::NetlistError> {
//! let alu = SimpleAlu::new(8)?;
//! let mut sim = TimingSim::new(alu.netlist(), Voltage::NOMINAL)?;
//! let ev = AluEvent::new(AluOp::Add, 200, 100);
//! let t = sim.apply(&alu.encode(&ev))?;
//! assert_eq!(t.output_bits() & 0xFF, (200 + 100) & 0xFF);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod adder;
mod complex_alu;
mod decode;
mod multiplier;
mod ops;
mod prims;
mod shifter;
mod simple_alu;
mod stage;

pub use adder::{
    carry_lookahead_adder, carry_select_adder, carry_skip_adder, kogge_stone_adder,
    ripple_carry_adder, AdderKind,
};
pub use complex_alu::ComplexAlu;
pub use decode::DecodeStage;
pub use multiplier::{array_multiplier, dadda_multiplier, wallace_multiplier};
pub use ops::{AluEvent, AluOp};
pub use prims::{
    and_tree, eq_comparator, full_adder, ltu_comparator, mux_word, onehot_decoder, or_tree,
    priority_chain,
};
pub use shifter::{barrel_shifter, ShiftDirection};
pub use simple_alu::SimpleAlu;
pub use stage::{build_stage, PipeStage, StageKind};
