//! The lint rules and the per-file checking engine.
//!
//! Rules are deliberately *conservative token-level* checks: without type
//! information a scanner cannot prove that a given `HashMap` is never
//! iterated, so engine code is held to the stronger, checkable invariant
//! — the hazardous names simply do not appear. Anything intentional is
//! suppressed in place with a reason ([`crate::rules::parse_suppression`]),
//! which doubles as documentation of *why* the hazard is sound there.

use crate::lexer::{self, TokKind, Token};

/// A lint rule. The policy table ([`crate::policy`]) decides which rules
/// apply to which files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet`: iteration order varies per process (random
    /// SipHash keys), breaking the bit-identical-results invariant.
    HashCollections,
    /// `Instant::now()` / `SystemTime`: wall-clock reads make results
    /// depend on when (and how fast) the run happened.
    WallClock,
    /// `std::env` reads: results must not depend on ambient process
    /// state beyond the sanctioned knobs.
    EnvRead,
    /// `.unwrap()` / `.expect()` / `panic!` / slice indexing in a
    /// request path that must answer 4xx/5xx instead of dying.
    PanicPath,
    /// `static mut`: shared mutable state, racy by construction.
    StaticMut,
    /// `unsafe`: this workspace is 100% safe Rust and stays that way.
    NoUnsafe,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::HashCollections,
    Rule::WallClock,
    Rule::EnvRead,
    Rule::PanicPath,
    Rule::StaticMut,
    Rule::NoUnsafe,
];

impl Rule {
    /// The kebab-case name used in diagnostics and `allow(...)` comments.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::EnvRead => "env-read",
            Rule::PanicPath => "panic-path",
            Rule::StaticMut => "static-mut",
            Rule::NoUnsafe => "no-unsafe",
        }
    }

    /// Parses a rule name (as written in `allow(...)`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }

    /// Why the rule exists — the determinism/robustness invariant it
    /// protects (also rendered into the README rule table).
    #[must_use]
    pub const fn why(self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "HashMap/HashSet iteration order is randomized per process; any ordering that \
                 leaks into results, reports or schedules breaks the bit-identical guarantee"
            }
            Rule::WallClock => {
                "Instant::now()/SystemTime make outputs depend on when and how fast the run \
                 happened; engine results must be a pure function of the spec"
            }
            Rule::EnvRead => {
                "std::env reads couple results to ambient process state; only the sanctioned \
                 knobs (SYNTS_THREADS, SYNTS_CACHE_DIR) may be read, at their one blessed site"
            }
            Rule::PanicPath => {
                "a panic in the request path kills the connection instead of answering 4xx/5xx; \
                 handlers must surface errors as responses"
            }
            Rule::StaticMut => "static mut is racy shared mutable state; use atomics or locks",
            Rule::NoUnsafe => {
                "the workspace is 100% safe Rust (#![forbid(unsafe_code)] everywhere)"
            }
        }
    }

    /// The message attached to a violation of this rule.
    #[must_use]
    pub const fn message(self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or \
                 an index-ordered collection"
            }
            Rule::WallClock => {
                "wall-clock read (Instant::now/SystemTime) outside the sanctioned timing modules"
            }
            Rule::EnvRead => "environment read outside the sanctioned configuration sites",
            Rule::PanicPath => {
                "potential panic in the request path; map the failure to a 4xx/5xx response"
            }
            Rule::StaticMut => "static mut is forbidden; use an atomic, Mutex or OnceLock",
            Rule::NoUnsafe => "unsafe code is forbidden in this workspace",
        }
    }
}

/// One diagnostic. `rule` is a rule name, or the meta-diagnostics
/// `bad-suppression` / `unused-suppression`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based source line.
    pub line: u32,
    /// Rule name (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed, well-formed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment is on.
    pub line: u32,
    /// Line whose violations it suppresses.
    pub target_line: u32,
    /// The rules it allows.
    pub rules: Vec<Rule>,
    /// The mandatory justification.
    pub reason: String,
}

/// The outcome of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed violations, sorted by (line, rule).
    pub violations: Vec<Violation>,
    /// Suppressions that matched at least one violation.
    pub suppressions: Vec<Suppression>,
}

const SUPPRESSION_MARKER: &str = "synts-lint:";

/// How a comment relates to the suppression syntax.
#[derive(Debug, PartialEq, Eq)]
pub enum SuppressionParse {
    /// Not a suppression comment at all.
    NotASuppression,
    /// A well-formed `synts-lint: allow(rule, ...) — reason` comment.
    Parsed {
        /// The allowed rules.
        rules: Vec<Rule>,
        /// The justification text.
        reason: String,
    },
    /// Carries the marker but is malformed; the message says how.
    Malformed(String),
}

/// Parses one comment body (the text after `//`) against the suppression
/// grammar: `synts-lint: allow(rule[, rule...]) — reason`. The reason is
/// mandatory — an allow without a why is itself a violation — and may be
/// separated by an em dash, `--`, `-` or `:`. The marker must *start*
/// the comment (doc comments that merely mention the syntax mid-sentence
/// are prose, not suppressions).
#[must_use]
pub fn parse_suppression(text: &str) -> SuppressionParse {
    let trimmed = text.trim_start_matches(|c: char| c == '/' || c == '!' || c.is_whitespace());
    let Some(rest) = trimmed.strip_prefix(SUPPRESSION_MARKER) else {
        return SuppressionParse::NotASuppression;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return SuppressionParse::Malformed(
            "expected `allow(rule, ...)` after `synts-lint:`".to_string(),
        );
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return SuppressionParse::Malformed("expected `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return SuppressionParse::Malformed("unclosed `allow(` list".to_string());
    };
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        if name.is_empty() {
            return SuppressionParse::Malformed("empty rule name in allow(...)".to_string());
        }
        match Rule::from_name(name) {
            Some(rule) => rules.push(rule),
            None => {
                let known: Vec<&str> = ALL_RULES.iter().map(|r| r.name()).collect();
                return SuppressionParse::Malformed(format!(
                    "unknown rule '{name}' in allow(...) (known: {})",
                    known.join(", ")
                ));
            }
        }
    }
    if rules.is_empty() {
        return SuppressionParse::Malformed("allow(...) names no rules".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let reason = ["—", "--", "-", ":"]
        .iter()
        .find_map(|sep| after.strip_prefix(sep))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return SuppressionParse::Malformed(
            "suppression carries no reason; write `synts-lint: allow(rule) — why it is sound`"
                .to_string(),
        );
    }
    SuppressionParse::Parsed {
        rules,
        reason: reason.to_string(),
    }
}

/// Method names that panic when called on the wrong variant. Deliberately
/// excludes the non-panicking `unwrap_or*` family.
const PANIC_METHODS: [&str; 5] = [
    "unwrap",
    "unwrap_err",
    "unwrap_unchecked",
    "expect",
    "expect_err",
];

/// Macros that panic unconditionally when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// `std::env` functions whose result depends on ambient process state.
const ENV_READS: [&str; 9] = [
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "temp_dir",
    "current_dir",
    "home_dir",
];

/// Runs `rules` over the token stream, ignoring test-only line ranges.
fn scan(tokens: &[Token], test_ranges: &[(u32, u32)], rules: &[Rule]) -> Vec<Violation> {
    let has = |r: Rule| rules.contains(&r);
    let ident = |idx: usize| match tokens.get(idx).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |idx: usize, c: char| matches!(tokens.get(idx), Some(t) if t.kind == TokKind::Punct(c));
    let mut out = Vec::new();
    let mut push = |line: u32, rule: Rule| {
        if !lexer::in_ranges(test_ranges, line) {
            out.push(Violation {
                line,
                rule: rule.name(),
                message: rule.message().to_string(),
            });
        }
    };
    for (i, tok) in tokens.iter().enumerate() {
        let line = tok.line;
        match &tok.kind {
            TokKind::Ident(name) => match name.as_str() {
                "HashMap" | "HashSet" if has(Rule::HashCollections) => {
                    push(line, Rule::HashCollections);
                }
                "SystemTime" if has(Rule::WallClock) => push(line, Rule::WallClock),
                "Instant"
                    if has(Rule::WallClock)
                        && punct(i + 1, ':')
                        && punct(i + 2, ':')
                        && ident(i + 3) == Some("now") =>
                {
                    push(line, Rule::WallClock);
                }
                "env"
                    if has(Rule::EnvRead)
                        && punct(i + 1, ':')
                        && punct(i + 2, ':')
                        && ident(i + 3).is_some_and(|f| ENV_READS.contains(&f)) =>
                {
                    push(line, Rule::EnvRead);
                }
                "static" if has(Rule::StaticMut) && ident(i + 1) == Some("mut") => {
                    push(line, Rule::StaticMut);
                }
                "unsafe" if has(Rule::NoUnsafe) => push(line, Rule::NoUnsafe),
                m if has(Rule::PanicPath)
                    && PANIC_MACROS.contains(&m)
                    && punct(i + 1, '!')
                    && (punct(i + 2, '(') || punct(i + 2, '[') || punct(i + 2, '{')) =>
                {
                    push(line, Rule::PanicPath);
                }
                m if has(Rule::PanicPath)
                    && PANIC_METHODS.contains(&m)
                    && i > 0
                    && punct(i - 1, '.')
                    && punct(i + 1, '(') =>
                {
                    push(line, Rule::PanicPath);
                }
                _ => {}
            },
            // Index expressions: `expr[...]` can panic out of bounds. A
            // `[` opens an index iff the previous token could end an
            // expression (identifier, `)`, `]`); array literals, slice
            // patterns, attributes and `vec![` are preceded by other
            // tokens and stay exempt.
            TokKind::Punct('[') if has(Rule::PanicPath) && i > 0 => {
                let indexes = matches!(
                    &tokens[i - 1].kind,
                    TokKind::Ident(_) | TokKind::Punct(')') | TokKind::Punct(']')
                );
                if indexes {
                    push(line, Rule::PanicPath);
                }
            }
            _ => {}
        }
    }
    out
}

/// Checks one file's source against `rules`, applying suppression
/// comments. This is the whole per-file pipeline: lex → find test
/// ranges → scan → match suppressions → report leftovers.
#[must_use]
pub fn check_source(src: &str, rules: &[Rule]) -> FileReport {
    let lexed = lexer::lex(src);
    let test_ranges = lexer::test_line_ranges(&lexed.tokens);
    let mut violations = scan(&lexed.tokens, &test_ranges, rules);

    // Collect suppressions; malformed ones are violations themselves.
    let mut suppressions: Vec<(Suppression, bool)> = Vec::new();
    for comment in &lexed.comments {
        if lexer::in_ranges(&test_ranges, comment.line) {
            continue; // rules don't run in test code, so neither do allows
        }
        match parse_suppression(&comment.text) {
            SuppressionParse::NotASuppression => {}
            SuppressionParse::Malformed(msg) => violations.push(Violation {
                line: comment.line,
                rule: "bad-suppression",
                message: msg,
            }),
            SuppressionParse::Parsed { rules, reason } => {
                let target_line = if comment.standalone {
                    // A standalone comment covers the next code line.
                    lexed
                        .tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > comment.line)
                        .unwrap_or(comment.line)
                } else {
                    comment.line
                };
                suppressions.push((
                    Suppression {
                        line: comment.line,
                        target_line,
                        rules,
                        reason,
                    },
                    false,
                ));
            }
        }
    }

    // Apply: a violation survives unless some suppression targets its
    // line and allows its rule.
    violations.retain(|v| {
        let mut keep = true;
        for (s, used) in &mut suppressions {
            if s.target_line == v.line && s.rules.iter().any(|r| r.name() == v.rule) {
                *used = true;
                keep = false;
            }
        }
        keep
    });

    // A suppression that suppresses nothing is stale — flag it so dead
    // allows can't accumulate.
    for (s, used) in &suppressions {
        if !used {
            violations.push(Violation {
                line: s.line,
                rule: "unused-suppression",
                message: format!(
                    "suppression allows [{}] but nothing on line {} triggers it",
                    s.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    s.target_line
                ),
            });
        }
    }

    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations.dedup();
    FileReport {
        violations,
        suppressions: suppressions
            .into_iter()
            .filter_map(|(s, used)| used.then_some(s))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: [Rule; 5] = [
        Rule::HashCollections,
        Rule::WallClock,
        Rule::EnvRead,
        Rule::StaticMut,
        Rule::NoUnsafe,
    ];

    fn rules_at(report: &FileReport) -> Vec<(u32, &'static str)> {
        report.violations.iter().map(|v| (v.line, v.rule)).collect()
    }

    #[test]
    fn hash_collections_fire_on_type_mentions_only_in_code() {
        let src = "use std::collections::HashMap;\nlet s = \"HashMap\"; // HashMap\n";
        let report = check_source(src, &ENGINE);
        assert_eq!(rules_at(&report), vec![(1, "hash-collections")]);
    }

    #[test]
    fn instant_now_fires_but_a_bare_instant_import_does_not() {
        let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
        let report = check_source(src, &ENGINE);
        assert_eq!(rules_at(&report), vec![(2, "wall-clock")]);
    }

    #[test]
    fn panic_path_flags_methods_macros_and_indexing() {
        let src = "\
fn h(xs: &[u32], o: Option<u32>) -> u32 {\n\
    let a = o.unwrap();\n\
    let b = o.expect(\"set\");\n\
    let c = xs[0];\n\
    let d = o.unwrap_or(0);\n\
    let e = vec![1, 2];\n\
    if a > b { panic!(\"boom\") }\n\
    a + b + c + d + e[0]\n\
}\n";
        let report = check_source(src, &[Rule::PanicPath]);
        assert_eq!(
            rules_at(&report),
            vec![
                (2, "panic-path"),
                (3, "panic-path"),
                (4, "panic-path"),
                (7, "panic-path"),
                (8, "panic-path"),
            ]
        );
    }

    #[test]
    fn trailing_suppression_with_reason_suppresses_its_line() {
        let src = "use std::collections::HashMap; \
                   // synts-lint: allow(hash-collections) — keys are content-addressed\n";
        let report = check_source(src, &ENGINE);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressions.len(), 1);
        assert_eq!(report.suppressions[0].reason, "keys are content-addressed");
    }

    #[test]
    fn standalone_suppression_covers_the_next_code_line() {
        let src = "\
// synts-lint: allow(env-read) — the one sanctioned worker-count knob\n\
fn f() -> Option<String> { std::env::var(\"SYNTS_THREADS\").ok() }\n";
        let report = check_source(src, &ENGINE);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.suppressions[0].target_line, 2);
    }

    #[test]
    fn suppression_without_reason_is_a_violation_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // synts-lint: allow(hash-collections)\n";
        let report = check_source(src, &ENGINE);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"bad-suppression"), "{rules:?}");
        assert!(rules.contains(&"hash-collections"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported_with_the_known_list() {
        let src = "let x = 1; // synts-lint: allow(hash-iteration) — wrong name\n";
        let report = check_source(src, &ENGINE);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "bad-suppression");
        assert!(
            report.violations[0].message.contains("hash-collections"),
            "{}",
            report.violations[0].message
        );
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = "let x = 1; // synts-lint: allow(env-read) — nothing here reads env\n";
        let report = check_source(src, &ENGINE);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "unused-suppression");
    }

    #[test]
    fn multi_rule_allow_and_separator_variants_parse() {
        for sep in ["—", "--", "-", ":"] {
            let text = format!(" synts-lint: allow(wall-clock, env-read) {sep} bench timing");
            match parse_suppression(&text) {
                SuppressionParse::Parsed { rules, reason } => {
                    assert_eq!(rules, vec![Rule::WallClock, Rule::EnvRead]);
                    assert_eq!(reason, "bench timing");
                }
                other => panic!("separator {sep:?} failed: {other:?}"),
            }
        }
        assert_eq!(
            parse_suppression(" just a comment"),
            SuppressionParse::NotASuppression
        );
    }

    #[test]
    fn test_modules_are_exempt_from_determinism_rules() {
        let src = "\
fn prod() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    #[test]\n\
    fn t() { let _ = std::time::Instant::now(); }\n\
}\n";
        let report = check_source(src, &ENGINE);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn forbid_unsafe_attribute_is_not_an_unsafe_violation() {
        let src = "#![forbid(unsafe_code)]\nfn safe() {}\n";
        let report = check_source(src, &[Rule::NoUnsafe]);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn static_mut_fires_but_static_lifetimes_do_not() {
        let src = "static mut G: u32 = 0;\nfn f(x: &'static mut u32) {}\nstatic OK: u32 = 1;\n";
        let report = check_source(src, &[Rule::StaticMut]);
        assert_eq!(rules_at(&report), vec![(1, "static-mut")]);
    }
}
