//! `synts-lint` binary: walk the workspace, enforce the policy table,
//! exit nonzero on any unsuppressed violation.
//!
//! ```text
//! synts-lint [--root DIR] [--json] [--out FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use synts_lint::rules::ALL_RULES;

const USAGE: &str = "\
synts-lint: workspace determinism & robustness static analysis

USAGE:
    synts-lint [--root DIR] [--json] [--out FILE] [--list-rules]

OPTIONS:
    --root DIR     Workspace root (default: discovered upward from cwd)
    --json         Emit the machine-readable JSON report instead of text
    --out FILE     Also write the report to FILE
    --list-rules   Print the rule table and exit

Suppress a finding in place with a mandatory reason:
    // synts-lint: allow(rule-name) — why this is sound here
";

struct Args {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        out: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a file argument")?;
                args.out = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        println!("{:<18} WHY", "RULE");
        for rule in ALL_RULES {
            println!("{:<18} {}", rule.name(), rule.why());
        }
        return Ok(true);
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            discover_root(&cwd).ok_or("no workspace Cargo.toml found upward from cwd")?
        }
    };
    let report = synts_lint::lint_workspace(&root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    let rendered = if args.json {
        report.render_json()
    } else {
        report.render_text()
    };
    print!("{rendered}");
    if let Some(out) = &args.out {
        std::fs::write(out, &rendered).map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("synts-lint: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
