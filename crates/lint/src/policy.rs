//! The per-path policy table: which rules apply to which workspace files.
//!
//! The table is ordered most-specific-first. Returning `None` means the
//! file is out of scope entirely (vendored stand-ins, build output, the
//! lint's own fixture corpus — which *intentionally* violates rules).

use crate::rules::Rule;

/// Rules every in-scope file gets, regardless of crate.
const BASE: [Rule; 2] = [Rule::StaticMut, Rule::NoUnsafe];

/// Engine crates: results must be a pure, deterministic function of the
/// spec, so the full determinism set applies to their `src/`.
const ENGINE_CRATES: [&str; 8] = [
    "crates/core/",
    "crates/milp/",
    "crates/gatelib/",
    "crates/timing/",
    "crates/circuits/",
    "crates/workloads/",
    "crates/archsim/",
    "crates/gpgpu/",
];

fn with(extra: &[Rule]) -> Vec<Rule> {
    let mut rules = BASE.to_vec();
    rules.extend_from_slice(extra);
    rules.sort();
    rules.dedup();
    rules
}

/// Path prefixes the walker (and direct invocations) skip entirely.
pub const SKIP_PREFIXES: [&str; 4] = ["vendor/", "target/", ".git/", "crates/lint/tests/fixtures/"];

/// Returns the rules for a workspace-relative path (forward slashes),
/// or `None` when the file is out of scope.
#[must_use]
pub fn policy_for(rel: &str) -> Option<Vec<Rule>> {
    if !rel.ends_with(".rs") || SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    // Integration tests, benches and examples may use whatever the test
    // needs (temp dirs, timing harnesses); only memory-safety rules hold.
    let in_test_tree = rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    if in_test_tree {
        return Some(BASE.to_vec());
    }
    Some(match rel {
        // Sanctioned timing module: phase detection *measures* wall-clock
        // behaviour by design. Determinism of data structures still holds.
        "crates/core/src/phase.rs" => with(&[Rule::HashCollections]),
        // The service request path must answer 4xx/5xx, never die.
        // fleet.rs is in it too: polls, heartbeats and completions are
        // handler code (its executor loop additionally sleeps its poll
        // cadence, which WallClock does not cover by design).
        "crates/serve/src/http.rs" | "crates/serve/src/queue.rs" | "crates/serve/src/fleet.rs" => {
            with(&[
                Rule::HashCollections,
                Rule::WallClock,
                Rule::EnvRead,
                Rule::PanicPath,
            ])
        }
        // The client polls with deadlines and sleeps its retry backoff
        // (sanctioned wall-clock sites; the backoff *schedule* is a pure
        // function of the policy, so determinism is unaffected).
        "crates/serve/src/client.rs" => with(&[Rule::HashCollections]),
        _ => {
            if rel.starts_with("crates/serve/src/bin/") {
                // Binaries parse std::env::args by nature.
                with(&[Rule::HashCollections, Rule::WallClock])
            } else if rel.starts_with("crates/serve/") {
                with(&[Rule::HashCollections, Rule::WallClock, Rule::EnvRead])
            } else if rel.starts_with("crates/bench/") || rel.starts_with("crates/lint/") {
                // bench is the sanctioned measurement crate; the lint's
                // own CLI reads args. Ordered output still matters.
                with(&[Rule::HashCollections])
            } else if ENGINE_CRATES.iter().any(|p| rel.starts_with(p)) || rel.starts_with("src/") {
                with(&[Rule::HashCollections, Rule::WallClock, Rule::EnvRead])
            } else {
                BASE.to_vec()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_and_fixtures_are_out_of_scope() {
        assert_eq!(policy_for("vendor/serde/src/lib.rs"), None);
        assert_eq!(
            policy_for("crates/lint/tests/fixtures/bad/env_read.rs"),
            None
        );
        assert_eq!(policy_for("target/debug/build/foo.rs"), None);
        assert_eq!(policy_for("README.md"), None);
    }

    #[test]
    fn engine_src_gets_the_full_determinism_set() {
        let rules = policy_for("crates/core/src/solver.rs").unwrap();
        for r in [
            Rule::HashCollections,
            Rule::WallClock,
            Rule::EnvRead,
            Rule::StaticMut,
            Rule::NoUnsafe,
        ] {
            assert!(rules.contains(&r), "missing {r:?}");
        }
        assert!(!rules.contains(&Rule::PanicPath));
    }

    #[test]
    fn request_path_files_get_panic_path() {
        for f in [
            "crates/serve/src/http.rs",
            "crates/serve/src/queue.rs",
            "crates/serve/src/fleet.rs",
        ] {
            assert!(policy_for(f).unwrap().contains(&Rule::PanicPath), "{f}");
        }
        assert!(!policy_for("crates/serve/src/client.rs")
            .unwrap()
            .contains(&Rule::PanicPath));
    }

    #[test]
    fn crash_safety_modules_stay_under_the_clock_rules() {
        // The journal and the fault harness are determinism-critical:
        // any new wall-clock or env read there must carry an explicit
        // suppression, not ride on a policy carve-out. (The two
        // sanctioned sites today: `SYNTS_FAULTS` arming in faults.rs and
        // the read-deadline clock in http.rs, both inline-suppressed.)
        let journal = policy_for("crates/serve/src/journal.rs").unwrap();
        assert!(journal.contains(&Rule::WallClock));
        assert!(journal.contains(&Rule::EnvRead));
        let faults = policy_for("crates/core/src/faults.rs").unwrap();
        for r in [Rule::WallClock, Rule::EnvRead, Rule::HashCollections] {
            assert!(faults.contains(&r), "missing {r:?}");
        }
    }

    #[test]
    fn sanctioned_sites_drop_the_matching_rule() {
        let phase = policy_for("crates/core/src/phase.rs").unwrap();
        assert!(!phase.contains(&Rule::WallClock));
        assert!(phase.contains(&Rule::HashCollections));
        let client = policy_for("crates/serve/src/client.rs").unwrap();
        assert!(!client.contains(&Rule::WallClock));
        let bench = policy_for("crates/bench/src/figures.rs").unwrap();
        assert!(!bench.contains(&Rule::WallClock));
    }

    #[test]
    fn test_trees_keep_only_memory_safety_rules() {
        for f in [
            "tests/pipeline.rs",
            "crates/gatelib/tests/properties.rs",
            "crates/bench/benches/solver.rs",
        ] {
            let rules = policy_for(f).unwrap();
            assert_eq!(rules, vec![Rule::StaticMut, Rule::NoUnsafe], "{f}");
        }
    }
}
