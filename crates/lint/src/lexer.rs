//! A small, self-contained Rust token scanner.
//!
//! The workspace vendors derive-only stand-ins for `serde`/`proptest`, so
//! there is no `syn` to lean on; this lexer covers exactly what the lint
//! rules need and nothing more:
//!
//! * identifiers and keywords (one token kind — rules match on spelling),
//! * punctuation, one char per token,
//! * string / raw-string / byte-string / char literals and numbers,
//!   collapsed to an opaque [`TokKind::Literal`] so `"HashMap"` inside a
//!   string can never trip a rule,
//! * lifetimes, kept distinct from char literals so `&'static mut T`
//!   cannot be mistaken for `static mut`,
//! * line comments, surfaced separately (suppression comments live
//!   there); block comments are skipped and may nest.
//!
//! Every token and comment carries its 1-based source line. On top of the
//! raw stream, [`test_line_ranges`] finds `#[cfg(test)]` / `#[test]`
//! items so determinism rules can ignore test-only code, where wall-clock
//! reads and temp dirs are legitimate.

/// What a token is; contents only matter for identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `static`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `:`, ...).
    Punct(char),
    /// A lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// The token itself.
    pub kind: TokKind,
}

/// One `//` comment (doc comments included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line.
    pub line: u32,
    /// Text after the `//`, untrimmed.
    pub text: String,
    /// Whether the comment is the first thing on its line (a standalone
    /// comment suppresses the *next* code line; a trailing one its own).
    pub standalone: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Line comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Never fails: unterminated literals simply run to EOF,
/// which is good enough for a linter (rustc reports the real error).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;

    // Consumes a `"..."` string body starting at the opening quote;
    // returns the index after the closing quote.
    let quoted = |chars: &[char], mut j: usize, line: &mut u32| -> usize {
        j += 1; // opening quote
        while j < n {
            match chars[j] {
                '\\' => {
                    if j + 1 < n && chars[j + 1] == '\n' {
                        *line += 1;
                    }
                    j += 2;
                }
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                '"' => return j + 1,
                _ => j += 1,
            }
        }
        j
    };
    // Consumes a `'...'` char body starting at the opening quote.
    let char_lit = |chars: &[char], mut j: usize| -> usize {
        j += 1;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\'' => return j + 1,
                _ => j += 1,
            }
        }
        j
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
                standalone: !line_has_code,
            });
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            line_has_code = true;
            continue;
        }
        // String literal.
        if c == '"' {
            let tok_line = line;
            i = quoted(&chars, i, &mut line);
            out.tokens.push(Token {
                line: tok_line,
                kind: TokKind::Literal,
            });
            line_has_code = true;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let tok_line = line;
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if next.is_some_and(is_ident_start) && after != Some('\'') {
                // Lifetime: consume the identifier.
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                i = j;
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Lifetime,
                });
            } else {
                i = char_lit(&chars, i);
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Literal,
                });
            }
            line_has_code = true;
            continue;
        }
        // Number literal (loose: consumes alphanumerics, `_` and `.`).
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '.') {
                j += 1;
            }
            i = j;
            out.tokens.push(Token {
                line,
                kind: TokKind::Literal,
            });
            line_has_code = true;
            continue;
        }
        // Identifier / keyword, with raw- and byte-string prefix handling.
        if is_ident_start(c) {
            let tok_line = line;
            let mut j = i;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let ident: String = chars[i..j].iter().collect();
            i = j;
            // r"...", r#"..."#, br"...", b"...", b'...' and raw idents.
            if matches!(ident.as_str(), "r" | "b" | "br") && i < n {
                let mut hashes = 0usize;
                let mut k = i;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if ident != "b" && k < n && chars[k] == '"' {
                    // Raw string: runs to `"` followed by `hashes` hashes.
                    let mut m = k + 1;
                    'raw: while m < n {
                        if chars[m] == '\n' {
                            line += 1;
                            m += 1;
                            continue;
                        }
                        if chars[m] == '"' {
                            let mut h = 0usize;
                            while h < hashes && m + 1 + h < n && chars[m + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                m += 1 + hashes;
                                break 'raw;
                            }
                        }
                        m += 1;
                    }
                    i = m;
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Literal,
                    });
                    line_has_code = true;
                    continue;
                }
                if ident == "r" && hashes == 1 && k < n && is_ident_start(chars[k]) {
                    // Raw identifier r#name.
                    let mut m = k;
                    while m < n && is_ident_continue(chars[m]) {
                        m += 1;
                    }
                    let raw: String = chars[k..m].iter().collect();
                    i = m;
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Ident(raw),
                    });
                    line_has_code = true;
                    continue;
                }
                if ident == "b" && hashes == 0 && chars[i] == '"' {
                    let l = quoted(&chars, i, &mut line);
                    i = l;
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Literal,
                    });
                    line_has_code = true;
                    continue;
                }
                if ident == "b" && hashes == 0 && chars[i] == '\'' {
                    i = char_lit(&chars, i);
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Literal,
                    });
                    line_has_code = true;
                    continue;
                }
            }
            out.tokens.push(Token {
                line: tok_line,
                kind: TokKind::Ident(ident),
            });
            line_has_code = true;
            continue;
        }
        out.tokens.push(Token {
            line,
            kind: TokKind::Punct(c),
        });
        line_has_code = true;
        i += 1;
    }
    out
}

/// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items
/// (attribute line through the item's closing brace or semicolon).
/// Attributes that also mention `not` (e.g. `#[cfg(not(test))]`) are
/// conservatively treated as production code.
#[must_use]
pub fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let punct =
        |idx: usize, c: char| matches!(tokens.get(idx), Some(t) if t.kind == TokKind::Punct(c));
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(punct(i, '#') && punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `test` (and `not`).
        let mut depth = 1usize;
        let mut j = i + 2;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) if s == "test" => has_test = true,
                TokKind::Ident(s) if s == "not" => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = j;
        while punct(k, '#') && punct(k + 1, '[') {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                match tokens[k].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Consume the item: up to `;`, or through a balanced `{ ... }`.
        let mut m = k;
        while m < tokens.len() {
            if punct(m, ';') {
                m += 1;
                break;
            }
            if punct(m, '{') {
                let mut d = 1usize;
                m += 1;
                while m < tokens.len() && d > 0 {
                    match tokens[m].kind {
                        TokKind::Punct('{') => d += 1,
                        TokKind::Punct('}') => d -= 1,
                        _ => {}
                    }
                    m += 1;
                }
                break;
            }
            m += 1;
        }
        let start = tokens[i].line;
        let end = if m > 0 && m <= tokens.len() {
            tokens[m - 1].line
        } else {
            start
        };
        ranges.push((start, end));
        i = m;
    }
    ranges
}

/// Whether `line` falls inside any of `ranges` (inclusive).
#[must_use]
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_never_yield_idents() {
        let src = r###"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let b = r#"Instant::now() in a raw string"#;
            let c = b"SystemTime bytes";
            let d = 'x';
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "{ids:?}");
        assert!(!ids.iter().any(|s| s == "Instant"), "{ids:?}");
        assert!(!ids.iter().any(|s| s == "SystemTime"), "{ids:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals_or_idents() {
        let src = "fn f<'a>(x: &'a str, y: &'static mut u8) {}";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        // `'static mut` must not surface a `static` identifier.
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "static"), "{ids:?}");
        assert!(ids.iter().any(|s| s == "mut"));
    }

    #[test]
    fn line_numbers_track_strings_and_block_comments() {
        let src = "let a = \"x\ny\";\n/* c\nc */ let b = 1;";
        let lexed = lex(src);
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(4));
    }

    #[test]
    fn standalone_vs_trailing_comments() {
        let src = "// standalone\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert!(lexed.comments[0].standalone);
        assert!(!lexed.comments[1].standalone);
    }

    #[test]
    fn cfg_test_mod_ranges_cover_the_body() {
        let src = "\
fn prod() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    #[test]\n\
    fn t() { let _: HashMap<u8, u8> = HashMap::new(); }\n\
}\n\
fn prod2() {}\n";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 7)]);
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 1));
        assert!(!in_ranges(&ranges, 8));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn prod() { let _ = 1; }\n";
        let lexed = lex(src);
        assert!(test_line_ranges(&lexed.tokens).is_empty());
    }

    #[test]
    fn cfg_test_on_a_use_item_ends_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}\n";
        let lexed = lex(src);
        assert_eq!(test_line_ranges(&lexed.tokens), vec![(1, 2)]);
    }

    #[test]
    fn raw_identifiers_surface_their_name() {
        let ids = idents("let r#type = 1;");
        assert!(ids.iter().any(|s| s == "type"), "{ids:?}");
    }
}
