//! # synts-lint
//!
//! Workspace determinism & robustness static analysis for SynTS.
//!
//! The engine's north-star invariant — results bit-identical at any
//! worker count, cache state and shard partition — is enforced
//! dynamically by property tests and golden fixtures. This crate adds
//! the static half: a std-only, hand-rolled token scanner (no `syn`;
//! the vendored `serde`/`proptest` stand-ins rule out real proc-macro
//! deps) that walks every workspace `.rs` file and flags source-level
//! hazards before any test runs:
//!
//! | rule | hazard |
//! |---|---|
//! | `hash-collections` | `HashMap`/`HashSet` iteration order is random per process |
//! | `wall-clock` | `Instant::now()`/`SystemTime` outside sanctioned timing modules |
//! | `env-read` | `std::env` reads outside sanctioned config sites |
//! | `panic-path` | `.unwrap()`/`.expect()`/indexing/`panic!` in the HTTP request path |
//! | `static-mut` | racy shared mutable state |
//! | `no-unsafe` | the workspace is 100% safe Rust |
//!
//! Which rules apply where is decided by the per-path policy table in
//! [`policy`]; intentional exceptions are suppressed in place with
//! `// synts-lint: allow(rule) — reason` (see [`rules`]).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod policy;
pub mod rules;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{check_source, Violation};

/// One linted file's results, with its workspace-relative path.
#[derive(Debug)]
pub struct FileFindings {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Unsuppressed violations in this file.
    pub violations: Vec<Violation>,
    /// Number of suppressions that matched a violation.
    pub suppressed: usize,
}

/// The whole workspace run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Per-file findings for files with at least one violation or
    /// suppression, sorted by path.
    pub files: Vec<FileFindings>,
    /// Total files scanned (in-policy `.rs` files).
    pub files_scanned: usize,
    /// Total suppressions honored across the workspace.
    pub suppressed: usize,
}

impl LintReport {
    /// Total unsuppressed violations.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.files.iter().map(|f| f.violations.len()).sum()
    }

    /// `true` when the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Renders `file:line: rule: message` diagnostics plus a summary
    /// line, deterministic (path-sorted, line-sorted).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for file in &self.files {
            for v in &file.violations {
                let _ = writeln!(out, "{}:{}: {}: {}", file.path, v.line, v.rule, v.message);
            }
        }
        let _ = writeln!(
            out,
            "synts-lint: {} violation(s), {} suppression(s) honored, {} file(s) scanned",
            self.violation_count(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// Renders the machine-readable report. Hand-rolled writer (this
    /// crate is dependency-free by design); output is deterministic and
    /// stable-keyed.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": {},", self.violation_count());
        let _ = writeln!(out, "  \"suppressions_honored\": {},", self.suppressed);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"findings\": [");
        let mut first = true;
        for file in &self.files {
            for v in &file.violations {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                    json_str(&file.path),
                    v.line,
                    json_str(v.rule),
                    json_str(&v.message)
                );
            }
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collects `.rs` files under `root`, sorted, skipping the
/// out-of-scope prefixes (deterministic walk order → deterministic
/// report order on every platform).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if policy::SKIP_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || format!("{rel}/").starts_with(p))
        {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints one file on disk against the policy table. Returns `None` when
/// the file is out of policy scope.
pub fn lint_file(root: &Path, path: &Path) -> io::Result<Option<FileFindings>> {
    let rel = rel_path(root, path);
    let Some(rules) = policy::policy_for(&rel) else {
        return Ok(None);
    };
    let src = fs::read_to_string(path)?;
    let report = check_source(&src, &rules);
    Ok(Some(FileFindings {
        path: rel,
        violations: report.violations,
        suppressed: report.suppressions.len(),
    }))
}

/// Walks the workspace rooted at `root` and lints every in-policy file.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    let mut report = LintReport::default();
    for path in &files {
        if let Some(findings) = lint_file(root, path)? {
            report.files_scanned += 1;
            report.suppressed += findings.suppressed;
            if !findings.violations.is_empty() || findings.suppressed > 0 {
                report.files.push(findings);
            }
        }
    }
    Ok(report)
}

/// Re-export for direct fixture checking in tests.
pub use rules::FileReport;

/// Convenience: check a source snippet under a named policy path (as if
/// it lived at `rel` in the workspace). Used by the fixture corpus.
#[must_use]
pub fn check_as(rel: &str, src: &str) -> Option<FileReport> {
    policy::policy_for(rel).map(|rules| check_source(src, &rules))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_valid_and_stable() {
        let report = LintReport {
            files: vec![FileFindings {
                path: "crates/x/src/lib.rs".to_string(),
                violations: vec![Violation {
                    line: 3,
                    rule: "no-unsafe",
                    message: "unsafe code is forbidden in this workspace".to_string(),
                }],
                suppressed: 1,
            }],
            files_scanned: 2,
            suppressed: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"violations\": 1"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"rule\": \"no-unsafe\""), "{json}");
        // Escaping round-trips quotes and backslashes.
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn text_report_uses_file_line_rule_message_shape() {
        let report = LintReport {
            files: vec![FileFindings {
                path: "crates/x/src/lib.rs".to_string(),
                violations: vec![Violation {
                    line: 7,
                    rule: "static-mut",
                    message: "static mut is forbidden; use an atomic, Mutex or OnceLock"
                        .to_string(),
                }],
                suppressed: 0,
            }],
            files_scanned: 1,
            suppressed: 0,
        };
        let text = report.render_text();
        assert!(
            text.starts_with("crates/x/src/lib.rs:7: static-mut: "),
            "{text}"
        );
        assert!(text.contains("1 violation(s)"), "{text}");
    }

    #[test]
    fn check_as_applies_the_policy_for_the_named_path() {
        let src = "use std::collections::HashMap;\n";
        let engine = check_as("crates/core/src/model.rs", src).unwrap();
        assert_eq!(engine.violations.len(), 1);
        let fixture = check_as("crates/lint/tests/fixtures/bad/x.rs", src);
        assert!(fixture.is_none());
    }
}
