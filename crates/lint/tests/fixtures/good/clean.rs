// Fixture: everything here is clean under the FULL rule set. Ordered
// collections, non-panicking fallbacks, trigger words confined to
// strings/comments, and test-only code using whatever it likes.
use std::collections::BTreeMap;

pub fn order(map: &BTreeMap<String, u32>) -> Vec<String> {
    map.keys().cloned().collect()
}

pub fn careful(flag: Option<u32>, xs: &[u32]) -> u32 {
    let a = flag.unwrap_or(7);
    let b = xs.first().copied().unwrap_or_default();
    a + b
}

pub fn pinned(slot: &'static mut u32) -> &'static str {
    *slot += 1;
    // Mentioning HashMap, Instant::now(), std::env::var, unsafe or
    // panic!( in a comment is prose, not code.
    "strings may say HashMap / SystemTime / std::env::var / static mut / unsafe"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_anything() {
        let mut m = HashMap::new();
        m.insert("started", std::time::Instant::now());
        let home = std::env::var("HOME").unwrap_or_default();
        assert!(m.len() == 1, "{home}");
    }
}
