use std::collections::HashMap; // synts-lint: allow(hash-iteration) — the rule name is wrong

pub fn count(map: &HashMap<String, u32>) -> usize {
    map.len()
}
