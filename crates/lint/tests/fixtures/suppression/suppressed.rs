// Fixture: both suppression forms, each with a reason — must lint clean
// with exactly two honored suppressions.
use std::collections::HashMap; // synts-lint: allow(hash-collections) — fixture: keys are content-addressed, never iterated

// synts-lint: allow(env-read) — fixture: the standalone form covers the next code line
pub fn threads() -> Option<String> { std::env::var("SYNTS_THREADS").ok() }

pub fn tag() -> &'static str {
    "HashMap" // the string and this comment are prose, no suppression needed
}
