use std::collections::HashMap; // synts-lint: allow(hash-collections)

pub fn count(map: &HashMap<String, u32>) -> usize {
    map.len()
}
