pub fn nothing_to_allow() -> u32 {
    7 // synts-lint: allow(wall-clock) — nothing on this line reads the clock
}
