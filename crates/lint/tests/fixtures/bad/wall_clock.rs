use std::time::{Duration, SystemTime}; //~ wall-clock

pub fn stamp() -> Duration {
    let started = std::time::Instant::now(); //~ wall-clock
    let _ = SystemTime::UNIX_EPOCH; //~ wall-clock
    started.elapsed()
}
