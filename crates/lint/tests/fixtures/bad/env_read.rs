pub fn threads() -> Option<String> {
    std::env::var("SYNTS_THREADS").ok() //~ env-read
}

pub fn environment() -> Vec<(String, String)> {
    std::env::vars().collect() //~ env-read
}

pub fn scratch() -> std::path::PathBuf {
    std::env::temp_dir() //~ env-read
}
