// Fixture: every tilde trailing marker names the violation the lint
// must report on that line. This file is outside the workspace walk
// (the walker skips crates/lint/tests/fixtures) and is linted only by
// the fixture-corpus test.
use std::collections::HashMap; //~ hash-collections
use std::collections::HashSet; //~ hash-collections

pub fn order(map: &HashMap<String, u32>, seen: &HashSet<u32>) -> Vec<String> { //~ hash-collections
    let _ = seen.len();
    map.keys().cloned().collect()
}
