pub fn first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() } //~ no-unsafe
}

pub unsafe fn also_flagged() {} //~ no-unsafe
