static mut COUNTER: u64 = 0; //~ static-mut

pub fn fine() -> u64 {
    7
}
