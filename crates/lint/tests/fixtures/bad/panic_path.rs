pub fn handler(flag: Option<u32>, xs: &[u32]) -> u32 {
    let a = flag.unwrap(); //~ panic-path
    let b = flag.expect("flag must be set"); //~ panic-path
    let c = xs[0]; //~ panic-path
    if a > b {
        panic!("a exceeded b"); //~ panic-path
    }
    match a {
        0 => unreachable!("a is never zero"), //~ panic-path
        _ => a + b + c,
    }
}
