//! The lint's acceptance gate: the workspace itself must lint clean.
//!
//! Zero unsuppressed violations, every suppression honored (an unused
//! allow is itself a violation, so this also proves every committed
//! suppression still matches something).

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = synts_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 100,
        "walker found only {} files — skip list too broad?",
        report.files_scanned
    );
    assert!(
        report.suppressed >= 5,
        "expected the committed suppressions to be honored, saw {}",
        report.suppressed
    );
    assert!(
        report.is_clean(),
        "unsuppressed violations:\n{}",
        report.render_text()
    );
}
