//! Fixture-corpus self-test: every `bad/` fixture carries `//~ rule`
//! trailing markers naming exactly the violations the lint must report;
//! `good/` fixtures must lint clean under the FULL rule set; the
//! `suppression/` corpus pins the allow-comment semantics (honored,
//! missing reason, unknown rule, unused).
//!
//! The workspace walker skips `crates/lint/tests/fixtures/` entirely —
//! these files are linted only here, via [`check_source`].

use std::fs;
use std::path::{Path, PathBuf};

use synts_lint::rules::{check_source, ALL_RULES};

fn fixture_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

fn fixture_files(sub: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(fixture_dir(sub))
        .unwrap_or_else(|e| panic!("fixture dir {sub}: {e}"))
        .map(|entry| entry.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    files
}

/// Parses the `//~ rule` trailing markers out of a fixture source.
fn expectations(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some((_, marker)) = line.split_once("//~") {
            let line_no = u32::try_from(i + 1).expect("fixture fits in u32 lines");
            out.push((line_no, marker.trim().to_string()));
        }
    }
    out
}

fn found(src: &str) -> Vec<(u32, String)> {
    check_source(src, &ALL_RULES)
        .violations
        .iter()
        .map(|v| (v.line, v.rule.to_string()))
        .collect()
}

#[test]
fn bad_fixtures_trigger_exactly_their_markers() {
    let files = fixture_files("bad");
    assert_eq!(files.len(), 6, "one bad fixture per rule: {files:?}");
    for file in files {
        let src = fs::read_to_string(&file).expect("readable fixture");
        let expected = expectations(&src);
        assert!(
            !expected.is_empty(),
            "{}: bad fixture carries no //~ markers",
            file.display()
        );
        assert_eq!(
            found(&src),
            expected,
            "{}: violations vs markers",
            file.display()
        );
    }
}

#[test]
fn every_rule_has_a_triggering_fixture() {
    let mut covered: Vec<String> = fixture_files("bad")
        .iter()
        .flat_map(|f| expectations(&fs::read_to_string(f).expect("readable fixture")))
        .map(|(_, rule)| rule)
        .collect();
    covered.sort();
    covered.dedup();
    for rule in ALL_RULES {
        assert!(
            covered.iter().any(|r| r == rule.name()),
            "rule {} has no triggering fixture",
            rule.name()
        );
    }
}

#[test]
fn good_fixtures_lint_clean_under_the_full_rule_set() {
    let files = fixture_files("good");
    assert!(!files.is_empty());
    for file in files {
        let src = fs::read_to_string(&file).expect("readable fixture");
        let report = check_source(&src, &ALL_RULES);
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            file.display(),
            report.violations
        );
    }
}

fn suppression_case(name: &str) -> synts_lint::FileReport {
    let src = fs::read_to_string(fixture_dir("suppression").join(name))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    check_source(&src, &ALL_RULES)
}

#[test]
fn honored_suppressions_silence_their_lines() {
    let report = suppression_case("suppressed.rs");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressions.len(), 2);
    for s in &report.suppressions {
        assert!(s.reason.starts_with("fixture:"), "{:?}", s.reason);
    }
}

#[test]
fn a_missing_reason_invalidates_the_suppression() {
    let report = suppression_case("missing_reason.rs");
    let got: Vec<(u32, &str)> = report.violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        got,
        vec![
            (1, "bad-suppression"),
            (1, "hash-collections"),
            (3, "hash-collections"),
        ]
    );
}

#[test]
fn an_unknown_rule_name_invalidates_the_suppression() {
    let report = suppression_case("unknown_rule.rs");
    let got: Vec<(u32, &str)> = report.violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        got,
        vec![
            (1, "bad-suppression"),
            (1, "hash-collections"),
            (3, "hash-collections"),
        ]
    );
    let bad = &report.violations[0];
    assert!(bad.message.contains("hash-iteration"), "{}", bad.message);
    assert!(bad.message.contains("hash-collections"), "{}", bad.message);
}

#[test]
fn a_suppression_matching_nothing_is_flagged_unused() {
    let report = suppression_case("unused.rs");
    let got: Vec<(u32, &str)> = report.violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(got, vec![(2, "unused-suppression")]);
}
