//! # gpgpu — the SynTS GPGPU case study substrate (paper Sec 3.2, 5.5)
//!
//! The paper asks whether timing speculation on a GPGPU needs per-lane
//! tuning, modeling a Radeon HD 7970 with Multi2Sim + the MIAOW RTL: it
//! extracts cycle-by-cycle inputs to the 16 vector-ALU lanes of a SIMD
//! unit, plots per-lane hamming-distance histograms of the outputs
//! (Fig 5.10), and finds them *homogeneous* — every multi-threaded kernel
//! spreads statistically identical work across lanes, so per-core TS
//! suffices and SynTS's heterogeneity machinery is not needed there.
//!
//! This crate rebuilds that pipeline: a compute-unit model with 16 VALU
//! lanes executing wavefronts in lockstep, instrumented GPGPU kernels
//! (BlackScholes, EigenValue, MatrixMult, FFT, BinarySearch, StreamCluster,
//! Swaptions, X264-SAD), per-lane hamming-distance histograms, and per-lane
//! gate-level error curves for the stronger form of the homogeneity check.
//!
//! ```
//! use gpgpu::{GpuKernel, SimdConfig, SimdUnit};
//!
//! let unit = SimdUnit::new(SimdConfig::hd7970());
//! let run = unit.run(GpuKernel::MatrixMult, 2048, 7);
//! let report = run.hamming_report();
//! // All 16 lanes look alike: the paper's homogeneity finding.
//! assert!(report.min_similarity > 0.9);
//! ```
#![forbid(unsafe_code)]

mod analysis;
mod kernels;
mod simd;

pub use analysis::{LaneActivityReport, LaneErrorReport};
pub use kernels::GpuKernel;
pub use simd::{LaneCtx, SimdConfig, SimdRun, SimdUnit};
