//! The SIMD compute-unit model: 16 vector-ALU lanes executing wavefronts
//! of work-items in lockstep (one GCN SIMD unit of the HD 7970).

use circuits::AluEvent;
use workloads::Recorder;

use crate::analysis::{LaneActivityReport, LaneErrorReport};
use crate::kernels::GpuKernel;

/// Geometry of one SIMD unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdConfig {
    /// Vector-ALU lanes per SIMD unit.
    pub lanes: usize,
    /// Work-items per wavefront (executed `wavefront / lanes` cycles per
    /// instruction).
    pub wavefront: usize,
    /// Datapath width of the recorded operands.
    pub width: usize,
}

impl SimdConfig {
    /// The HD 7970 (GCN) shape the paper studies: 16 lanes, 64-wide
    /// wavefronts.
    #[must_use]
    pub fn hd7970() -> SimdConfig {
        SimdConfig {
            lanes: 16,
            wavefront: 64,
            width: 16,
        }
    }
}

/// One lane's execution context inside a kernel invocation: an instrumented
/// integer datapath plus the work-item's global id.
#[derive(Debug)]
pub struct LaneCtx<'a> {
    /// The instrumented datapath (records every ALU op with operands).
    pub rec: &'a mut Recorder,
    /// Global work-item id.
    pub gid: u64,
    /// A per-item pseudo-random value derived from the run seed (stands in
    /// for the item's input data).
    pub data: u64,
}

/// A SIMD unit ready to execute kernels.
#[derive(Debug, Clone)]
pub struct SimdUnit {
    config: SimdConfig,
}

impl SimdUnit {
    /// Creates a unit with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `wavefront` is not a positive multiple of `lanes`.
    #[must_use]
    pub fn new(config: SimdConfig) -> SimdUnit {
        assert!(
            config.lanes > 0 && config.wavefront.is_multiple_of(config.lanes),
            "wavefront must be a positive multiple of the lane count"
        );
        SimdUnit { config }
    }

    /// The unit's geometry.
    #[must_use]
    pub fn config(&self) -> SimdConfig {
        self.config
    }

    /// Executes `kernel` over `n_items` work-items with the given seed.
    ///
    /// Work-items map to lanes the way GCN does: item `g` executes on lane
    /// `g mod lanes` (consecutive items across lanes, wavefront by
    /// wavefront).
    #[must_use]
    pub fn run(&self, kernel: GpuKernel, n_items: usize, seed: u64) -> SimdRun {
        let mut recorders: Vec<Recorder> = (0..self.config.lanes)
            .map(|_| Recorder::new(self.config.width))
            .collect();
        for gid in 0..n_items as u64 {
            let lane = (gid as usize) % self.config.lanes;
            // SplitMix64 per-item data (full finalizer so lane striding
            // leaves no residual structure).
            let mut z = gid
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let data = z ^ (z >> 31);
            let mut ctx = LaneCtx {
                rec: &mut recorders[lane],
                gid,
                data,
            };
            kernel.execute(&mut ctx);
        }
        SimdRun {
            config: self.config,
            kernel,
            lane_events: recorders.into_iter().map(|r| r.finish().events).collect(),
        }
    }
}

/// The result of one kernel execution: per-lane ALU event streams.
#[derive(Debug, Clone)]
pub struct SimdRun {
    config: SimdConfig,
    kernel: GpuKernel,
    lane_events: Vec<Vec<AluEvent>>,
}

impl SimdRun {
    /// The executed kernel.
    #[must_use]
    pub fn kernel(&self) -> GpuKernel {
        self.kernel
    }

    /// The unit geometry used.
    #[must_use]
    pub fn config(&self) -> SimdConfig {
        self.config
    }

    /// Per-lane ALU event streams.
    #[must_use]
    pub fn lane_events(&self) -> &[Vec<AluEvent>] {
        &self.lane_events
    }

    /// Per-lane output-value traces (the VALU result each cycle), the input
    /// to the Fig 5.10 hamming analysis.
    #[must_use]
    pub fn lane_outputs(&self) -> Vec<Vec<u64>> {
        self.lane_events
            .iter()
            .map(|events| events.iter().map(|e| e.result(self.config.width)).collect())
            .collect()
    }

    /// The Fig 5.10 analysis: per-lane hamming-distance histograms plus a
    /// pairwise similarity summary.
    #[must_use]
    pub fn hamming_report(&self) -> LaneActivityReport {
        LaneActivityReport::from_outputs(self.config.width, &self.lane_outputs())
    }

    /// The stronger homogeneity check: per-lane gate-level error curves on
    /// a VALU datapath, with their maximum pairwise gap.
    ///
    /// # Errors
    ///
    /// Propagates [`timing::TimingError`] from characterization.
    pub fn lane_error_report(
        &self,
        max_samples: usize,
    ) -> Result<LaneErrorReport, timing::TimingError> {
        LaneErrorReport::characterize(self.config.width, &self.lane_events, max_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_items_stripe_across_lanes() {
        let unit = SimdUnit::new(SimdConfig::hd7970());
        let run = unit.run(GpuKernel::BinarySearch, 1600, 3);
        let counts: Vec<usize> = run.lane_events().iter().map(Vec::len).collect();
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        assert!(min > 0);
        // 1600 items over 16 lanes: perfectly balanced item counts; event
        // counts may vary slightly with data-dependent control flow.
        assert!((max - min) as f64 / max as f64 <= 0.2, "{counts:?}");
    }

    #[test]
    fn runs_are_deterministic() {
        let unit = SimdUnit::new(SimdConfig::hd7970());
        let a = unit.run(GpuKernel::BlackScholes, 320, 11);
        let b = unit.run(GpuKernel::BlackScholes, 320, 11);
        assert_eq!(a.lane_events(), b.lane_events());
    }

    #[test]
    fn outputs_match_event_semantics() {
        let unit = SimdUnit::new(SimdConfig::hd7970());
        let run = unit.run(GpuKernel::MatrixMult, 160, 5);
        let outs = run.lane_outputs();
        for (lane, events) in run.lane_events().iter().enumerate() {
            assert_eq!(outs[lane].len(), events.len());
            for (o, e) in outs[lane].iter().zip(events) {
                assert_eq!(*o, e.result(16));
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the lane count")]
    fn bad_geometry_rejected() {
        let _ = SimdUnit::new(SimdConfig {
            lanes: 16,
            wavefront: 40,
            width: 16,
        });
    }
}
