//! Instrumented GPGPU kernels (the paper's Sec 5.5 benchmark set,
//! fixed-point versions).
//!
//! Each kernel is the per-work-item body; the SIMD unit stripes items over
//! lanes. Data parallelism is uniform by construction — the property that
//! makes every lane's operand statistics identical and the per-lane error
//! probabilities homogeneous (the case study's conclusion).

use crate::simd::LaneCtx;

/// Fractional bits of the kernels' fixed-point format.
const FRAC: u32 = 6;

/// The GPGPU benchmarks characterized in Sec 5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum GpuKernel {
    /// Option pricing: exp/sqrt approximations via shift-add polynomials.
    BlackScholes,
    /// One power-iteration step of an eigenvalue solver.
    EigenValue,
    /// Tiled dense matrix multiply (inner-product fragment).
    MatrixMult,
    /// Radix-2 butterfly evaluation.
    Fft,
    /// Binary search over a sorted table.
    BinarySearch,
    /// Ray–sphere intersection test (one ray per work item).
    Raytrace,
    /// k-means-style closest-center distance computation.
    StreamCluster,
    /// Swaption-style discounted cash-flow accumulation.
    Swaptions,
    /// x264-style sum of absolute differences over a macroblock row.
    X264,
}

impl GpuKernel {
    /// All kernels.
    pub const ALL: [GpuKernel; 9] = [
        GpuKernel::BlackScholes,
        GpuKernel::EigenValue,
        GpuKernel::MatrixMult,
        GpuKernel::Fft,
        GpuKernel::BinarySearch,
        GpuKernel::Raytrace,
        GpuKernel::StreamCluster,
        GpuKernel::Swaptions,
        GpuKernel::X264,
    ];

    /// Canonical lowercase name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            GpuKernel::BlackScholes => "blackscholes",
            GpuKernel::EigenValue => "eigenvalue",
            GpuKernel::MatrixMult => "matrixmult",
            GpuKernel::Fft => "fft",
            GpuKernel::BinarySearch => "binarysearch",
            GpuKernel::Raytrace => "raytrace",
            GpuKernel::StreamCluster => "streamcluster",
            GpuKernel::Swaptions => "swaptions",
            GpuKernel::X264 => "x264",
        }
    }

    /// Executes the per-work-item body.
    pub fn execute(self, ctx: &mut LaneCtx<'_>) {
        match self {
            GpuKernel::BlackScholes => black_scholes(ctx),
            GpuKernel::EigenValue => eigen_value(ctx),
            GpuKernel::MatrixMult => matrix_mult(ctx),
            GpuKernel::Fft => fft_butterfly(ctx),
            GpuKernel::BinarySearch => binary_search(ctx),
            GpuKernel::Raytrace => raytrace(ctx),
            GpuKernel::StreamCluster => stream_cluster(ctx),
            GpuKernel::Swaptions => swaptions(ctx),
            GpuKernel::X264 => x264_sad(ctx),
        }
    }
}

impl std::fmt::Display for GpuKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn black_scholes(ctx: &mut LaneCtx<'_>) {
    // Spot, strike and vol from the item's data word.
    let s = (ctx.data & 0x3FFF) | 0x400;
    let k = ((ctx.data >> 14) & 0x3FFF) | 0x400;
    let vol = ((ctx.data >> 28) & 0xFF) | 0x10;
    let rec = &mut *ctx.rec;
    // Moneyness m = s/k approximated with two Newton-ish mul steps.
    let diff = rec.sub(s, k);
    let m2 = rec.fxmul(diff, diff, FRAC);
    // Polynomial CDF approximation: c = a0 + a1·x + a2·x².
    let t1 = rec.fxmul(m2, vol, FRAC);
    let t2 = rec.fxmul(t1, vol, FRAC);
    let acc = rec.add(t1, t2);
    let acc = rec.add(acc, 0x20);
    // Discount: price = acc >> r with a compare guard.
    let price = rec.shr(acc, 2);
    rec.less_than(price, s);
    let addr = rec.index(0x6FE8, ctx.gid & 0xFFF, 8);
    rec.store(addr);
}

fn eigen_value(ctx: &mut LaneCtx<'_>) {
    // y_i = Σ_j a_ij x_j over an 8-wide row; then normalization shift.
    let rec = &mut *ctx.rec;
    let mut acc = 0u64;
    let mut x = ctx.data;
    for j in 0..8u64 {
        let a = (x ^ (x >> 7)) & 0xFFF;
        x = x.rotate_left(9);
        let prod = rec.fxmul(a, (ctx.data >> (j * 3)) & 0x7FF, FRAC);
        acc = rec.add(acc, prod);
        let addr = rec.index(0x4FD0, j, 8);
        rec.load(addr);
    }
    let norm = rec.shr(acc, 3);
    rec.less_than(norm, 0x4000);
}

fn matrix_mult(ctx: &mut LaneCtx<'_>) {
    // An 8-term inner product of the item's row and column fragments.
    let rec = &mut *ctx.rec;
    let mut acc = 0u64;
    let mut v = ctx.data;
    for t in 0..8u64 {
        let a = v & 0xFFFF;
        let b = (v >> 16) & 0xFFFF;
        v = v.rotate_left(13).wrapping_add(t);
        let prod = rec.fxmul(a, b, FRAC);
        acc = rec.add(acc, prod);
        let addr = rec.index(0x2FB0, t * 64 + (v & 63), 8);
        rec.load(addr);
    }
    let addr = rec.index(0x8FC4, ctx.gid & 0xFFF, 8);
    rec.store(addr);
    rec.less_than(acc, 0x8000);
}

fn fft_butterfly(ctx: &mut LaneCtx<'_>) {
    let rec = &mut *ctx.rec;
    let re = ctx.data & 0xFFFF;
    let im = (ctx.data >> 16) & 0xFFFF;
    let wr = (ctx.data >> 32) & 0x7F;
    let wi = (ctx.data >> 40) & 0x7F;
    let p0 = rec.fxmul(re, wr, FRAC);
    let p1 = rec.fxmul(im, wi, FRAC);
    let p2 = rec.fxmul(re, wi, FRAC);
    let p3 = rec.fxmul(im, wr, FRAC);
    let tr = rec.sub(p0, p1);
    let ti = rec.add(p2, p3);
    let outr = rec.add(re, tr);
    let outi = rec.sub(im, ti);
    let addr = rec.index(0x1FA8, ctx.gid & 0x1FFF, 8);
    rec.store(addr);
    rec.xor(outr, outi);
}

fn binary_search(ctx: &mut LaneCtx<'_>) {
    // 12 probe steps over a virtual sorted table.
    let rec = &mut *ctx.rec;
    let needle = ctx.data & 0xFFFF;
    let mut lo = 0u64;
    let mut hi = 0xFFFFu64;
    for _ in 0..12 {
        let sum = rec.add(lo, hi);
        let mid = rec.shr(sum, 1);
        let addr = rec.index(0x3F9C, mid & 0xFFF, 8);
        rec.load(addr);
        // Virtual table value at mid is mid itself (identity table).
        if rec.less_than(needle, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    rec.sub(hi, lo);
}

fn raytrace(ctx: &mut LaneCtx<'_>) {
    // Ray-sphere hit test: b = d·(o-c), disc = b² - (|o-c|² - r²), all in
    // 2-D fixed point per lane (one ray per work item, 2 spheres).
    let rec = &mut *ctx.rec;
    let ox = ctx.data & 0xFFF;
    let oy = (ctx.data >> 12) & 0xFFF;
    let dx = ((ctx.data >> 24) & 0x7F) | 0x8;
    let dy = ((ctx.data >> 31) & 0x7F) | 0x8;
    let mut scene = ctx.data >> 38;
    for s in 0..2u64 {
        let cx = scene & 0xFFF;
        let cy = (scene >> 12) & 0x7FF;
        scene = scene.rotate_left(17).wrapping_add(s);
        let lx = rec.sub(ox, cx);
        let ly = rec.sub(oy, cy);
        let bx = rec.fxmul(dx, lx, FRAC);
        let by = rec.fxmul(dy, ly, FRAC);
        let b = rec.add(bx, by);
        let l2x = rec.fxmul(lx, lx, FRAC);
        let l2y = rec.fxmul(ly, ly, FRAC);
        let l2 = rec.add(l2x, l2y);
        let b2 = rec.fxmul(b, b, FRAC);
        let r2 = 0x100;
        let cterm = rec.sub(l2, r2);
        let disc = rec.sub(b2, cterm);
        // Hit if disc >= 0 in the masked domain: compare against half-range.
        if rec.less_than(disc, 1 << 15) {
            // Near hit: fetch the sphere's shading record.
            let addr = rec.index(0xAF60, s * 32 + (disc & 31), 8);
            rec.load(addr);
        }
    }
    let addr = rec.index(0xBF54, ctx.gid & 0xFFF, 4);
    rec.store(addr);
}

fn stream_cluster(ctx: &mut LaneCtx<'_>) {
    // Distance to 4 centers; keep the min.
    let rec = &mut *ctx.rec;
    let px = ctx.data & 0x3FFF;
    let py = (ctx.data >> 14) & 0x3FFF;
    let mut best = 0xFFFF;
    let mut c = ctx.data >> 28;
    for k in 0..4u64 {
        let cx = c & 0x3FFF;
        let cy = (c >> 14) & 0x3FFF;
        c = c.rotate_left(11).wrapping_add(k);
        let dx = rec.sub(px, cx);
        let dy = rec.sub(py, cy);
        let d2x = rec.fxmul(dx, dx, FRAC);
        let d2y = rec.fxmul(dy, dy, FRAC);
        let d = rec.add(d2x, d2y);
        if rec.less_than(d, best) {
            best = d;
        }
        let addr = rec.index(0x5F90, k, 8);
        rec.load(addr);
    }
}

fn swaptions(ctx: &mut LaneCtx<'_>) {
    // Discounted cash-flow accumulation over 6 periods.
    let rec = &mut *ctx.rec;
    let rate = (ctx.data & 0x3F) | 0x8;
    let mut cash = (ctx.data >> 6) & 0x3FFF;
    let mut acc = 0u64;
    for _ in 0..6 {
        let discounted = rec.fxmul(cash, 0x40 - rate, FRAC);
        acc = rec.add(acc, discounted);
        cash = rec.shr(cash, 1);
        let next = rec.add(cash, discounted & 0xFF);
        cash = next;
    }
    rec.less_than(acc, 0x7FFF);
}

fn x264_sad(ctx: &mut LaneCtx<'_>) {
    // Sum of absolute differences over an 8-pixel row.
    let rec = &mut *ctx.rec;
    let mut acc = 0u64;
    let mut v = ctx.data;
    for p in 0..8u64 {
        let a = v & 0xFF;
        let b = (v >> 8) & 0xFF;
        v = v.rotate_left(7).wrapping_add(p);
        let d = rec.sub(a, b);
        // abs via compare + conditional negate.
        let abs = if rec.less_than(a, b) {
            rec.sub(0, d)
        } else {
            d
        };
        acc = rec.add(acc, abs);
        let addr = rec.index(0x7F80, ((v ^ acc) & 0xFF) * 8 + p, 4);
        rec.load(addr);
    }
    let addr = rec.index(0x9F74, ctx.gid & 0xFFF, 4);
    rec.store(addr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Recorder;

    #[test]
    fn every_kernel_emits_work() {
        for kernel in GpuKernel::ALL {
            let mut rec = Recorder::new(16);
            let mut ctx = LaneCtx {
                rec: &mut rec,
                gid: 42,
                data: 0xDEAD_BEEF_CAFE_F00D,
            };
            kernel.execute(&mut ctx);
            assert!(rec.event_count() > 5, "{kernel} too trivial");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = GpuKernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GpuKernel::ALL.len());
    }

    #[test]
    fn multiplier_kernels_emit_muls() {
        for kernel in [
            GpuKernel::MatrixMult,
            GpuKernel::BlackScholes,
            GpuKernel::Fft,
        ] {
            let mut rec = Recorder::new(16);
            let mut ctx = LaneCtx {
                rec: &mut rec,
                gid: 7,
                data: 0x0123_4567_89AB_CDEF,
            };
            kernel.execute(&mut ctx);
            let work = rec.finish();
            assert!(
                work.events.iter().any(|e| e.op.is_complex()),
                "{kernel} should multiply"
            );
        }
    }
}
