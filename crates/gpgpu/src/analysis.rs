//! Lane-homogeneity analysis: hamming histograms (Fig 5.10) and per-lane
//! gate-level error curves.

use circuits::{AluEvent, SimpleAlu};
use gatelib::hamming::HammingHistogram;
use timing::{max_abs_gap, ErrorCurve, StageCharacterizer, TimingError};

/// The Fig 5.10 product: one hamming-distance histogram per vector-ALU
/// lane, plus the pairwise-similarity summary that encodes "qualitatively
/// similar".
#[derive(Debug, Clone)]
pub struct LaneActivityReport {
    /// Per-lane histograms of output hamming distances.
    pub histograms: Vec<HammingHistogram>,
    /// Smallest pairwise similarity between any two lanes (1 = identical
    /// distributions; the paper's homogeneity criterion).
    pub min_similarity: f64,
    /// Mean hamming distance per lane.
    pub mean_distances: Vec<f64>,
}

impl LaneActivityReport {
    /// Builds the report from per-lane output traces.
    #[must_use]
    pub fn from_outputs(width: usize, lane_outputs: &[Vec<u64>]) -> LaneActivityReport {
        let histograms: Vec<HammingHistogram> = lane_outputs
            .iter()
            .map(|trace| HammingHistogram::from_trace(width, trace.iter().copied()))
            .collect();
        let mut min_similarity = 1.0f64;
        for i in 0..histograms.len() {
            for j in (i + 1)..histograms.len() {
                min_similarity = min_similarity.min(histograms[i].similarity(&histograms[j]));
            }
        }
        let mean_distances = histograms.iter().map(HammingHistogram::mean).collect();
        LaneActivityReport {
            histograms,
            min_similarity,
            mean_distances,
        }
    }

    /// Number of lanes analyzed.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.histograms.len()
    }
}

/// The stronger homogeneity statement: per-lane error-probability curves on
/// the VALU datapath and their worst pairwise gap over the TSR range.
#[derive(Debug, Clone)]
pub struct LaneErrorReport {
    /// Per-lane exact error curves.
    pub curves: Vec<ErrorCurve>,
    /// Largest |err_i(r) − err_j(r)| over lanes i, j and a TSR grid.
    pub max_gap: f64,
}

impl LaneErrorReport {
    /// Characterizes each lane's event stream on a VALU-shaped datapath
    /// (the SimpleALU netlist at the unit's width).
    ///
    /// # Errors
    ///
    /// Propagates [`TimingError`] from the characterization pipeline.
    pub fn characterize(
        width: usize,
        lane_events: &[Vec<AluEvent>],
        max_samples: usize,
    ) -> Result<LaneErrorReport, TimingError> {
        let stage = SimpleAlu::new(width)?;
        let charac = StageCharacterizer::from_stage(Box::new(stage))?;
        let curves: Vec<ErrorCurve> = lane_events
            .iter()
            .map(|ev| charac.error_curve_sampled(ev, max_samples))
            .collect::<Result<_, _>>()?;
        let grid: Vec<f64> = (0..10).map(|i| 0.6 + 0.04 * i as f64).collect();
        let mut max_gap = 0.0f64;
        for i in 0..curves.len() {
            for j in (i + 1)..curves.len() {
                max_gap = max_gap.max(max_abs_gap(&curves[i], &curves[j], &grid));
            }
        }
        Ok(LaneErrorReport { curves, max_gap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuKernel, SimdConfig, SimdUnit};

    #[test]
    fn all_kernels_are_lane_homogeneous() {
        // The paper's Sec 5.5 finding, reproduced for every kernel: lanes
        // of a SIMD unit are statistically indistinguishable.
        let unit = SimdUnit::new(SimdConfig::hd7970());
        for kernel in GpuKernel::ALL {
            let run = unit.run(kernel, 4096, 17);
            let report = run.hamming_report();
            assert_eq!(report.lanes(), 16);
            assert!(
                report.min_similarity > 0.85,
                "{kernel}: lanes diverge, similarity {}",
                report.min_similarity
            );
        }
    }

    #[test]
    fn error_curves_are_lane_homogeneous() {
        let unit = SimdUnit::new(SimdConfig::hd7970());
        let run = unit.run(GpuKernel::MatrixMult, 1024, 23);
        let report = run.lane_error_report(150).expect("characterizes");
        assert_eq!(report.curves.len(), 16);
        assert!(
            report.max_gap < 0.15,
            "per-lane error curves should agree, gap {}",
            report.max_gap
        );
    }

    #[test]
    fn report_handles_degenerate_lanes() {
        // Two lanes, one silent: similarity collapses, means reflect it.
        let outputs = vec![vec![0u64; 50], (0..50u64).collect()];
        let report = LaneActivityReport::from_outputs(16, &outputs);
        assert_eq!(report.lanes(), 2);
        assert!(report.min_similarity < 0.5);
        assert_eq!(report.mean_distances[0], 0.0);
    }
}
