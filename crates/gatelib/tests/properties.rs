//! Property-based tests for the gatelib invariants that the rest of the
//! SynTS stack relies on:
//!
//! 1. The timing simulator agrees with the functional reference evaluation
//!    on every vector of every circuit (logic correctness).
//! 2. Every dynamic sensitized delay is bounded by the STA critical path
//!    (timing speculation's safety envelope: at r = 1 no errors exist).
//! 3. Delay scales with voltage exactly per Table 5.1.

use gatelib::{CellKind, Netlist, NetlistBuilder, StaticTiming, TimingSim, Voltage};
use proptest::prelude::*;

/// Builds a random combinational DAG from a recipe of (kind index, input
/// selectors). Selectors index into the list of nets created so far, so the
/// construction is well-formed by design.
fn random_netlist(n_inputs: usize, recipe: &[(u8, u16, u16, u16)]) -> Netlist {
    let kinds = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Nand3,
        CellKind::Nor3,
        CellKind::Mux2,
        CellKind::Maj3,
        CellKind::Xor3,
        CellKind::Aoi21,
        CellKind::Oai21,
    ];
    let mut b = NetlistBuilder::new("random");
    let mut nets: Vec<_> = (0..n_inputs).map(|i| b.input(format!("i{i}"))).collect();
    for &(k, s0, s1, s2) in recipe {
        let kind = kinds[k as usize % kinds.len()];
        let pick = |s: u16, nets: &[gatelib::NetId]| nets[s as usize % nets.len()];
        let sel = [pick(s0, &nets), pick(s1, &nets), pick(s2, &nets)];
        let out = b
            .cell(kind, &sel[..kind.arity()])
            .expect("arity satisfied by construction");
        nets.push(out);
    }
    // Expose the last few nets as outputs so deep logic is observable.
    let n_out = nets.len().min(8);
    for (i, &n) in nets[nets.len() - n_out..].iter().enumerate() {
        b.output(n, format!("o{i}"));
    }
    b.finish().expect("valid by construction")
}

fn recipe_strategy() -> impl Strategy<Value = Vec<(u8, u16, u16, u16)>> {
    prop::collection::vec(
        (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()),
        1..60,
    )
}

fn vectors_strategy(n_inputs: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), n_inputs), 2..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sim_agrees_with_functional_eval(
        recipe in recipe_strategy(),
        vectors in vectors_strategy(5),
    ) {
        let n = random_netlist(5, &recipe);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("outputs exist");
        for v in &vectors {
            let t = sim.apply(v).expect("width matches");
            let reference = n.evaluate(v).expect("width matches");
            prop_assert_eq!(&t.outputs, &reference);
        }
    }

    #[test]
    fn dynamic_delay_never_exceeds_sta(
        recipe in recipe_strategy(),
        vectors in vectors_strategy(5),
    ) {
        let n = random_netlist(5, &recipe);
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("outputs exist");
        let bound = sta.nominal_period() + 1e-9;
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("outputs exist");
        for v in &vectors {
            let t = sim.apply(v).expect("width matches");
            prop_assert!(
                t.delay <= bound,
                "sensitized delay {} exceeds STA bound {}", t.delay, bound
            );
        }
    }

    #[test]
    fn delay_scales_linearly_with_voltage_factor(
        recipe in recipe_strategy(),
        vectors in vectors_strategy(4),
    ) {
        let n = random_netlist(4, &recipe);
        let v_lo = Voltage::new(0.68).expect("in range");
        let mut hi = TimingSim::new(&n, Voltage::NOMINAL).expect("ok");
        let mut lo = TimingSim::new(&n, v_lo).expect("ok");
        for v in &vectors {
            let th = hi.apply(v).expect("ok");
            let tl = lo.apply(v).expect("ok");
            // Table 5.1: 0.68 V multiplies every delay by 2.21.
            prop_assert!((tl.delay - th.delay * 2.21).abs() < 1e-6);
        }
    }

    #[test]
    fn toggle_counts_match_between_runs(
        recipe in recipe_strategy(),
        vectors in vectors_strategy(5),
    ) {
        // Determinism: two identical simulators see identical histories.
        let n = random_netlist(5, &recipe);
        let mut a = TimingSim::new(&n, Voltage::NOMINAL).expect("ok");
        let mut b = TimingSim::new(&n, Voltage::NOMINAL).expect("ok");
        for v in &vectors {
            let ta = a.apply(v).expect("ok");
            let tb = b.apply(v).expect("ok");
            prop_assert_eq!(ta, tb);
        }
        prop_assert_eq!(a.total_toggles(), b.total_toggles());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factored_dynamic_delay_never_exceeds_factored_sta(
        recipe in recipe_strategy(),
        vectors in vectors_strategy(5),
        seed in any::<u64>(),
    ) {
        // Invariant 2 survives process variation: on any sampled die, the
        // factored STA still bounds every dynamic sensitized delay.
        let n = random_netlist(5, &recipe);
        let model = gatelib::variation::VariationModel::ptm22_typical();
        let die = model.sample(n.cell_count(), seed);
        let sta = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &die)
            .expect("outputs exist");
        let bound = sta.nominal_period() + 1e-9;
        let mut sim = TimingSim::with_factors(&n, Voltage::NOMINAL, &die)
            .expect("outputs exist");
        for v in &vectors {
            let t = sim.apply(v).expect("width matches");
            prop_assert!(
                t.delay <= bound,
                "sensitized delay {} exceeds factored STA bound {}", t.delay, bound
            );
        }
    }

    #[test]
    fn factored_sta_within_factor_range_of_nominal(
        recipe in recipe_strategy(),
        seed in any::<u64>(),
    ) {
        // Scaling every cell by at most f_max cannot stretch the critical
        // path beyond f_max× (and likewise f_min below).
        let n = random_netlist(5, &recipe);
        let model = gatelib::variation::VariationModel::ptm22_typical();
        let die = model.sample(n.cell_count(), seed);
        let (f_min, f_max) = die.range();
        let base = StaticTiming::analyze(&n, Voltage::NOMINAL)
            .expect("ok").nominal_period();
        let var = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &die)
            .expect("ok").nominal_period();
        prop_assert!(var <= base * f_max * (1.0 + 1e-12));
        prop_assert!(var >= base * f_min * (1.0 - 1e-12));
    }

    #[test]
    fn variation_does_not_change_logic(
        recipe in recipe_strategy(),
        vectors in vectors_strategy(5),
        seed in any::<u64>(),
    ) {
        // Variation perturbs delay only; functional outputs are identical.
        let n = random_netlist(5, &recipe);
        let model = gatelib::variation::VariationModel::ptm22_typical();
        let die = model.sample(n.cell_count(), seed);
        let mut sim = TimingSim::with_factors(&n, Voltage::NOMINAL, &die).expect("ok");
        for v in &vectors {
            let t = sim.apply(v).expect("width matches");
            let reference = n.evaluate(v).expect("width matches");
            prop_assert_eq!(&t.outputs, &reference);
        }
    }

    #[test]
    fn aging_only_slows_the_critical_path(
        recipe in recipe_strategy(),
        years in 0.0f64..20.0,
    ) {
        let n = random_netlist(5, &recipe);
        let aging = gatelib::variation::AgingModel::nbti_ptm22();
        let fresh = StaticTiming::analyze(&n, Voltage::NOMINAL)
            .expect("ok").nominal_period();
        let factors = aging.factors(n.cell_count(), years, None).expect("ok");
        let aged = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &factors)
            .expect("ok").nominal_period();
        prop_assert!(aged >= fresh * (1.0 - 1e-12), "aging never speeds up");
        let expect = fresh * (1.0 + aging.degradation(years));
        prop_assert!((aged - expect).abs() <= 1e-9 * expect.max(1.0),
            "uniform aging scales the whole path: {} vs {}", aged, expect);
    }
}
