//! Structural netlist graph and its builder.
//!
//! A [`Netlist`] is a DAG of library cells. The [`NetlistBuilder`] API makes
//! combinational loops unrepresentable: a cell can only consume nets that
//! already exist, so creation order is a topological order and every fanout
//! edge points forward. This invariant is what lets the dynamic timing
//! simulator ([`crate::TimingSim`]) process dirty cells in plain id order.

use crate::cell::CellKind;
use crate::error::NetlistError;
use serde::{Deserialize, Serialize};

/// Identifier of a net (wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a cell instance in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index of this cell.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cell instance: a library gate with bound input nets and one output net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    kind: CellKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Cell {
    /// The library gate implementing this instance.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets, in pin order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this cell.
    #[must_use]
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Driver {
    PrimaryInput,
    Cell(CellId),
}

/// An immutable combinational netlist over the [`CellKind`] library.
///
/// Construct with [`NetlistBuilder`]; query with the accessors here; analyze
/// with [`crate::StaticTiming`]; simulate with [`crate::TimingSim`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    drivers: Vec<Driver>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    output_names: Vec<String>,
    input_names: Vec<String>,
    /// Fanout lists: `fanout[net] = cells consuming that net`, ascending ids.
    fanout: Vec<Vec<CellId>>,
    /// Per-cell propagation delay at Vdd = 1.0 V (intrinsic + load term).
    cell_delay_v1: Vec<f64>,
}

impl Netlist {
    /// Human-readable design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (primary inputs + cell outputs).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of cell instances.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// All cells, in topological (creation) order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell by id.
    #[must_use]
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.index())
    }

    /// Primary input nets, in declaration order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets, in declaration order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Name of the `i`-th primary input.
    #[must_use]
    pub fn input_name(&self, i: usize) -> Option<&str> {
        self.input_names.get(i).map(String::as_str)
    }

    /// Name of the `i`-th primary output.
    #[must_use]
    pub fn output_name(&self, i: usize) -> Option<&str> {
        self.output_names.get(i).map(String::as_str)
    }

    /// Cells consuming `net` (ascending cell id).
    ///
    /// Returns an empty slice for unknown nets.
    #[must_use]
    pub fn fanout_of(&self, net: NetId) -> &[CellId] {
        self.fanout
            .get(net.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The cell driving `net`, or `None` if `net` is a primary input or
    /// unknown.
    #[must_use]
    pub fn driver_of(&self, net: NetId) -> Option<CellId> {
        match self.drivers.get(net.index()) {
            Some(Driver::Cell(c)) => Some(*c),
            _ => None,
        }
    }

    /// Per-cell propagation delay at 1.0 V: intrinsic delay plus the load
    /// term for each fanout beyond the first.
    #[must_use]
    pub fn cell_delay_v1(&self, id: CellId) -> f64 {
        self.cell_delay_v1[id.index()]
    }

    /// All per-cell nominal delays at 1.0 V, cell id order — the library
    /// data callers fingerprint (e.g. the characterization cache key).
    #[must_use]
    pub fn cell_delays_v1(&self) -> &[f64] {
        &self.cell_delay_v1
    }

    /// Verifies the structural invariants a hand-built or deserialized
    /// netlist must satisfy: cell arities match their kinds, every
    /// referenced net exists, and every cell consumes only nets created
    /// before its own output — the topological-order property the
    /// simulator and STA rely on (its violation would be a combinational
    /// loop or a forward reference).
    ///
    /// Netlists from [`NetlistBuilder`] satisfy this by construction; call
    /// it after deserializing from untrusted data.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::ArityMismatch`] / [`NetlistError::UnknownNet`] for
    ///   malformed cells;
    /// * [`NetlistError::CombinationalLoop`] if a cell reads a net that is
    ///   not yet defined at its position;
    /// * [`NetlistError::NoOutputs`] if no primary output is declared.
    pub fn check_invariants(&self) -> Result<(), NetlistError> {
        if self.primary_outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for &po in &self.primary_outputs {
            if po.index() >= self.drivers.len() {
                return Err(NetlistError::UnknownNet(po.0));
            }
        }
        for cell in &self.cells {
            if cell.inputs.len() != cell.kind.arity() {
                return Err(NetlistError::ArityMismatch {
                    kind: cell.kind.name(),
                    expected: cell.kind.arity(),
                    got: cell.inputs.len(),
                });
            }
            let out = cell.output.index();
            if out >= self.drivers.len() {
                return Err(NetlistError::UnknownNet(cell.output.0));
            }
            for &n in &cell.inputs {
                if n.index() >= self.drivers.len() {
                    return Err(NetlistError::UnknownNet(n.0));
                }
                // Inputs must precede the output in net-creation order;
                // equality or inversion means a loop / forward reference.
                if n.index() >= out {
                    return Err(NetlistError::CombinationalLoop);
                }
            }
        }
        Ok(())
    }

    /// Functionally evaluates the netlist for one input vector (no timing).
    ///
    /// This is the reference semantics used by equivalence tests; the timing
    /// simulator must agree with it cycle for cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not have
    /// one value per primary input.
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.primary_inputs.len() {
            return Err(NetlistError::InputWidthMismatch {
                expected: self.primary_inputs.len(),
                got: inputs.len(),
            });
        }
        let mut values = vec![false; self.net_count()];
        for (net, &v) in self.primary_inputs.iter().zip(inputs) {
            values[net.index()] = v;
        }
        let mut pin_buf: Vec<bool> = Vec::with_capacity(3);
        for cell in &self.cells {
            pin_buf.clear();
            pin_buf.extend(cell.inputs.iter().map(|n| values[n.index()]));
            values[cell.output.index()] = cell.kind.eval(&pin_buf);
        }
        Ok(self
            .primary_outputs
            .iter()
            .map(|n| values[n.index()])
            .collect())
    }
}

/// Incremental constructor for [`Netlist`].
///
/// The builder hands out [`NetId`]s; cells may only reference ids already
/// returned, which statically rules out combinational loops.
///
/// ```
/// use gatelib::{CellKind, NetlistBuilder};
/// # fn main() -> Result<(), gatelib::NetlistError> {
/// let mut b = NetlistBuilder::new("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.cell(CellKind::Xor2, &[a, c])?;
/// let carry = b.cell(CellKind::And2, &[a, c])?;
/// b.output(sum, "sum");
/// b.output(carry, "carry");
/// let n = b.finish()?;
/// assert_eq!(n.evaluate(&[true, true])?, vec![false, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    drivers: Vec<Driver>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    output_names: Vec<String>,
    input_names: Vec<String>,
}

impl NetlistBuilder {
    /// Starts a new design with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            cells: Vec::new(),
            drivers: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            output_names: Vec::new(),
            input_names: Vec::new(),
        }
    }

    fn new_net(&mut self, driver: Driver) -> NetId {
        let id = NetId(u32::try_from(self.drivers.len()).expect("netlist too large"));
        self.drivers.push(driver);
        id
    }

    /// Declares a primary input and returns its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.new_net(Driver::PrimaryInput);
        self.primary_inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Declares a bus of `width` primary inputs named `name[0..width]`,
    /// least-significant bit first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Instantiates a cell and returns its output net.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::ArityMismatch`] if `inputs` has the wrong length.
    /// * [`NetlistError::UnknownNet`] if an input id was not issued by this
    ///   builder.
    pub fn cell(&mut self, kind: CellKind, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if inputs.len() != kind.arity() {
            return Err(NetlistError::ArityMismatch {
                kind: kind.name(),
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        for &n in inputs {
            if n.index() >= self.drivers.len() {
                return Err(NetlistError::UnknownNet(n.0));
            }
        }
        let cell_id = CellId(u32::try_from(self.cells.len()).expect("netlist too large"));
        let out = self.new_net(Driver::Cell(cell_id));
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Convenience: a constant-0 net (tie-low cell).
    ///
    /// # Errors
    ///
    /// Never fails in practice; shares the signature of [`Self::cell`].
    pub fn const0(&mut self) -> Result<NetId, NetlistError> {
        self.cell(CellKind::Tie0, &[])
    }

    /// Convenience: a constant-1 net (tie-high cell).
    ///
    /// # Errors
    ///
    /// Never fails in practice; shares the signature of [`Self::cell`].
    pub fn const1(&mut self) -> Result<NetId, NetlistError> {
        self.cell(CellKind::Tie1, &[])
    }

    /// Marks `net` as a primary output.
    pub fn output(&mut self, net: NetId, name: impl Into<String>) {
        self.primary_outputs.push(net);
        self.output_names.push(name.into());
    }

    /// Marks a whole bus as primary outputs named `name[0..]`, LSB first.
    pub fn output_bus(&mut self, nets: &[NetId], name: &str) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(n, format!("{name}[{i}]"));
        }
    }

    /// Number of cells instantiated so far.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Validates and freezes the design.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::NoOutputs`] if no primary output was declared.
    /// * [`NetlistError::UnknownNet`] if an output id is invalid (cannot
    ///   happen through this API but checked for defense in depth).
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if self.primary_outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for &n in &self.primary_outputs {
            if n.index() >= self.drivers.len() {
                return Err(NetlistError::UnknownNet(n.0));
            }
        }
        // Fanout lists; ascending cell id is automatic (cells iterate in order).
        let mut fanout: Vec<Vec<CellId>> = vec![Vec::new(); self.drivers.len()];
        for (idx, cell) in self.cells.iter().enumerate() {
            for &n in &cell.inputs {
                let cid = CellId(u32::try_from(idx).expect("checked at cell creation"));
                // A cell may use the same net on two pins; record once per pin
                // (the load model counts pins, not nets).
                fanout[n.index()].push(cid);
            }
        }
        // Per-cell delay at 1.0 V: intrinsic + load * (fanout_pins - 1).
        let cell_delay_v1 = self
            .cells
            .iter()
            .map(|c| {
                let p = c.kind.params();
                let pins = fanout[c.output.index()].len();
                p.intrinsic_delay + p.load_delay * (pins.saturating_sub(1)) as f64
            })
            .collect();
        Ok(Netlist {
            name: self.name,
            cells: self.cells,
            drivers: self.drivers,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            output_names: self.output_names,
            input_names: self.input_names,
            fanout,
            cell_delay_v1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let s = b.cell(CellKind::Xor3, &[a, c, cin]).expect("arity ok");
        let co = b.cell(CellKind::Maj3, &[a, c, cin]).expect("arity ok");
        b.output(s, "s");
        b.output(co, "co");
        b.finish().expect("valid netlist")
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        for bits in 0u8..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let cin = bits & 4 != 0;
            let out = n.evaluate(&[a, b, cin]).expect("width ok");
            let expect_sum = a ^ b ^ cin;
            // Textbook majority form, kept as written in logic texts.
            #[allow(clippy::nonminimal_bool)]
            let expect_carry = (a && b) || (b && cin) || (a && cin);
            assert_eq!(out, vec![expect_sum, expect_carry], "inputs {bits:03b}");
        }
    }

    #[test]
    fn arity_is_enforced() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let err = b.cell(CellKind::Nand2, &[a]).expect_err("wrong arity");
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_net_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let bogus = NetId(42);
        let err = b.cell(CellKind::And2, &[a, bogus]).expect_err("bogus id");
        assert_eq!(err, NetlistError::UnknownNet(42));
    }

    #[test]
    fn outputs_required() {
        let mut b = NetlistBuilder::new("empty");
        let _ = b.input("a");
        assert_eq!(b.finish().expect_err("no outputs"), NetlistError::NoOutputs);
    }

    #[test]
    fn evaluate_checks_width() {
        let n = full_adder();
        assert!(matches!(
            n.evaluate(&[true]).expect_err("short vector"),
            NetlistError::InputWidthMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn fanout_and_driver_queries() {
        let n = full_adder();
        let a = n.primary_inputs()[0];
        // `a` feeds both the XOR3 and the MAJ3.
        assert_eq!(n.fanout_of(a).len(), 2);
        assert_eq!(n.driver_of(a), None);
        let s = n.primary_outputs()[0];
        assert_eq!(n.driver_of(s), Some(CellId(0)));
    }

    #[test]
    fn load_increases_delay() {
        // One inverter driving 1 load vs. driving 3 loads.
        let mut b = NetlistBuilder::new("load");
        let a = b.input("a");
        let inv = b.cell(CellKind::Inv, &[a]).expect("ok");
        let x1 = b.cell(CellKind::Buf, &[inv]).expect("ok");
        let x2 = b.cell(CellKind::Buf, &[inv]).expect("ok");
        let x3 = b.cell(CellKind::Buf, &[inv]).expect("ok");
        b.output(x1, "o1");
        b.output(x2, "o2");
        b.output(x3, "o3");
        let n = b.finish().expect("valid");
        let inv_delay = n.cell_delay_v1(CellId(0));
        let expected = 1.0 + 0.30 * 2.0; // intrinsic + 2 extra fanout pins
        assert!((inv_delay - expected).abs() < 1e-12);
    }

    #[test]
    fn constants_evaluate() {
        let mut b = NetlistBuilder::new("ties");
        let zero = b.const0().expect("ok");
        let one = b.const1().expect("ok");
        let x = b.cell(CellKind::Or2, &[zero, one]).expect("ok");
        b.output(x, "x");
        let n = b.finish().expect("valid");
        assert_eq!(n.evaluate(&[]).expect("no inputs"), vec![true]);
    }

    #[test]
    fn bus_helpers_are_lsb_first() {
        let mut b = NetlistBuilder::new("bus");
        let xs = b.input_bus("x", 4);
        assert_eq!(xs.len(), 4);
        b.output_bus(&xs, "y");
        let n = b.finish().expect("valid");
        assert_eq!(n.input_name(0), Some("x[0]"));
        assert_eq!(n.output_name(3), Some("y[3]"));
        assert_eq!(
            n.evaluate(&[true, false, false, true]).expect("ok"),
            vec![true, false, false, true]
        );
    }

    #[test]
    fn same_net_on_two_pins_counts_two_loads() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("a");
        let x = b.cell(CellKind::Inv, &[a]).expect("ok");
        let y = b.cell(CellKind::And2, &[x, x]).expect("ok");
        b.output(y, "y");
        let n = b.finish().expect("valid");
        // The inverter output drives two pins of the AND.
        assert_eq!(
            n.fanout_of(n.cell(CellId(0)).expect("cell").output()).len(),
            2
        );
    }
}
