//! # gatelib — gate-level netlist substrate for SynTS
//!
//! This crate provides the circuit layer of the SynTS reproduction: a small
//! standard-cell library, a structural netlist graph with a builder API,
//! a voltage-aware delay model calibrated against the paper's Table 5.1,
//! static timing analysis (STA), and an event-driven *dynamic* timing
//! simulator that computes the **sensitized path delay** of each input
//! vector transition — the quantity timing speculation gambles on.
//!
//! The original paper obtained these delays from Synopsys Design Compiler
//! netlists (Illinois Verilog Model of an Alpha core) annotated with HSPICE
//! PTM-22 nm gate delays. Neither is redistributable, so this crate supplies
//! a self-contained substitute with the same *interface*: feed cycle-by-cycle
//! input vectors, get per-instruction propagation delays back.
//!
//! ## Quick example
//!
//! ```
//! use gatelib::{CellKind, NetlistBuilder, TimingSim, Voltage};
//!
//! # fn main() -> Result<(), gatelib::NetlistError> {
//! // A tiny 2-gate circuit: out = !(a & b) ^ c
//! let mut b = NetlistBuilder::new("demo");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let c = b.input("c");
//! let n = b.cell(CellKind::Nand2, &[a, bb])?;
//! let x = b.cell(CellKind::Xor2, &[n, c])?;
//! b.output(x, "out");
//! let netlist = b.finish()?;
//!
//! let mut sim = TimingSim::new(&netlist, Voltage::NOMINAL)?;
//! let _first = sim.apply(&[true, true, false])?;
//! let step = sim.apply(&[true, false, false])?;
//! assert!(step.delay > 0.0); // the NAND -> XOR path was sensitized
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod cell;
mod error;
pub mod export;
pub mod hamming;
mod netlist;
mod sim;
mod sta;
mod stats;
pub mod variation;
mod voltage;
mod wide;

pub use cell::{CellKind, CellParams, CELL_LIBRARY_NAME};
pub use error::NetlistError;
pub use netlist::{Cell, CellId, NetId, Netlist, NetlistBuilder};
pub use sim::{Step, TimingSim, Transition};
pub use sta::{CriticalPath, StaticTiming};
pub use stats::{NetlistStats, PowerEstimate};
pub use voltage::{Voltage, VoltageTable, VOLTAGE_TABLE_POINTS};
pub use wide::{WideStep, WideTimingSim, LANES};
