//! The standard-cell library: gate kinds, logic functions, and physical
//! parameters (intrinsic delay, load sensitivity, area, switching energy).
//!
//! Delay numbers are *normalized*: a fanout-of-1 inverter at Vdd = 1.0 V has
//! delay 1.0. Relative gate strengths follow typical 22 nm standard-cell
//! ratios (XOR ≈ 2 inverters, full-adder carry ≈ 2.2, etc.). Only relative
//! magnitudes matter for SynTS — the paper's analysis is entirely in terms of
//! delay ratios (timing-speculation ratio r = t_clk / t_nom).

use serde::{Deserialize, Serialize};

/// Name of the bundled cell library (used in reports and stats).
pub const CELL_LIBRARY_NAME: &str = "synts-ptm22-norm";

/// The kinds of combinational cells available to netlist generators.
///
/// The library is intentionally small — just enough to express the decode,
/// simple-ALU and complex-ALU stage netlists of the reproduction — but each
/// entry carries calibrated physical parameters so STA, dynamic timing and
/// the Sec 6.3 overhead model all read from one source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer (used for fanout trees and name isolation).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 2:1 multiplexer; pin order `[sel, a, b]`, output = `sel ? b : a`.
    Mux2,
    /// Majority-of-3 (full-adder carry); pin order `[a, b, c]`.
    Maj3,
    /// 3-input XOR (full-adder sum); pin order `[a, b, c]`.
    Xor3,
    /// And-Or-Invert 2-1: `!((a & b) | c)`; pin order `[a, b, c]`.
    Aoi21,
    /// Or-And-Invert 2-1: `!((a | b) & c)`; pin order `[a, b, c]`.
    Oai21,
    /// Constant-0 driver (tie-low cell).
    Tie0,
    /// Constant-1 driver (tie-high cell).
    Tie1,
}

/// Physical parameters of a cell, normalized to an FO1 inverter at 1.0 V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Intrinsic propagation delay at fanout 1, Vdd = 1.0 V.
    pub intrinsic_delay: f64,
    /// Additional delay per extra unit of fanout load.
    pub load_delay: f64,
    /// Cell area in normalized units (INV = 1.0).
    pub area: f64,
    /// Switching energy per output toggle, normalized (INV = 1.0) at 1.0 V.
    /// Scales with V² at other voltages.
    pub switch_energy: f64,
}

impl CellKind {
    /// All cell kinds in the library, in a stable order.
    pub const ALL: [CellKind; 19] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Nand3,
        CellKind::Nor3,
        CellKind::And3,
        CellKind::Or3,
        CellKind::Mux2,
        CellKind::Maj3,
        CellKind::Xor3,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Tie0,
        CellKind::Tie1,
    ];

    /// Number of input pins this cell requires.
    #[must_use]
    pub const fn arity(self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3
            | CellKind::Nor3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Mux2
            | CellKind::Maj3
            | CellKind::Xor3
            | CellKind::Aoi21
            | CellKind::Oai21 => 3,
        }
    }

    /// Short library name of the cell (e.g. `"NAND2"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor3 => "NOR3",
            CellKind::And3 => "AND3",
            CellKind::Or3 => "OR3",
            CellKind::Mux2 => "MUX2",
            CellKind::Maj3 => "MAJ3",
            CellKind::Xor3 => "XOR3",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
        }
    }

    /// Physical parameters of the cell (normalized FO1-inverter units).
    ///
    /// Ratios loosely follow a commercial 22 nm high-density library:
    /// NAND/NOR are fast and small, XOR family costs about two inverter
    /// delays, majority (full-adder carry) slightly more.
    #[must_use]
    pub const fn params(self) -> CellParams {
        match self {
            CellKind::Inv => CellParams {
                intrinsic_delay: 1.0,
                load_delay: 0.30,
                area: 1.0,
                switch_energy: 1.0,
            },
            CellKind::Buf => CellParams {
                intrinsic_delay: 1.4,
                load_delay: 0.22,
                area: 1.4,
                switch_energy: 1.3,
            },
            CellKind::Nand2 => CellParams {
                intrinsic_delay: 1.2,
                load_delay: 0.32,
                area: 1.4,
                switch_energy: 1.4,
            },
            CellKind::Nor2 => CellParams {
                intrinsic_delay: 1.4,
                load_delay: 0.36,
                area: 1.4,
                switch_energy: 1.5,
            },
            CellKind::And2 => CellParams {
                intrinsic_delay: 1.6,
                load_delay: 0.30,
                area: 1.8,
                switch_energy: 1.7,
            },
            CellKind::Or2 => CellParams {
                intrinsic_delay: 1.7,
                load_delay: 0.30,
                area: 1.8,
                switch_energy: 1.8,
            },
            CellKind::Xor2 => CellParams {
                intrinsic_delay: 2.0,
                load_delay: 0.38,
                area: 3.0,
                switch_energy: 2.6,
            },
            CellKind::Xnor2 => CellParams {
                intrinsic_delay: 2.0,
                load_delay: 0.38,
                area: 3.0,
                switch_energy: 2.6,
            },
            CellKind::Nand3 => CellParams {
                intrinsic_delay: 1.5,
                load_delay: 0.36,
                area: 2.0,
                switch_energy: 1.9,
            },
            CellKind::Nor3 => CellParams {
                intrinsic_delay: 1.9,
                load_delay: 0.42,
                area: 2.0,
                switch_energy: 2.1,
            },
            CellKind::And3 => CellParams {
                intrinsic_delay: 1.9,
                load_delay: 0.32,
                area: 2.4,
                switch_energy: 2.2,
            },
            CellKind::Or3 => CellParams {
                intrinsic_delay: 2.1,
                load_delay: 0.32,
                area: 2.4,
                switch_energy: 2.3,
            },
            CellKind::Mux2 => CellParams {
                intrinsic_delay: 1.8,
                load_delay: 0.34,
                area: 2.6,
                switch_energy: 2.2,
            },
            CellKind::Maj3 => CellParams {
                intrinsic_delay: 2.2,
                load_delay: 0.36,
                area: 3.2,
                switch_energy: 2.8,
            },
            CellKind::Xor3 => CellParams {
                intrinsic_delay: 2.8,
                load_delay: 0.40,
                area: 4.4,
                switch_energy: 3.6,
            },
            CellKind::Aoi21 => CellParams {
                intrinsic_delay: 1.6,
                load_delay: 0.36,
                area: 1.9,
                switch_energy: 1.8,
            },
            CellKind::Oai21 => CellParams {
                intrinsic_delay: 1.6,
                load_delay: 0.36,
                area: 1.9,
                switch_energy: 1.8,
            },
            CellKind::Tie0 | CellKind::Tie1 => CellParams {
                intrinsic_delay: 0.0,
                load_delay: 0.0,
                area: 0.3,
                switch_energy: 0.0,
            },
        }
    }

    /// Evaluate the cell's logic function on 64 independent input sets at
    /// once: bit `l` of each input word is input lane `l`, and bit `l` of
    /// the result is that lane's output — the bit-parallel form of
    /// [`CellKind::eval`] that [`crate::WideTimingSim`] drives.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `inputs.len() != self.arity()`.
    #[must_use]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        debug_assert_eq!(inputs.len(), self.arity(), "arity checked at build");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Mux2 => (inputs[0] & inputs[2]) | (!inputs[0] & inputs[1]),
            CellKind::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[1] & inputs[2]) | (inputs[0] & inputs[2])
            }
            CellKind::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Tie0 => 0,
            CellKind::Tie1 => !0,
        }
    }

    /// Evaluate the cell's logic function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`; netlist construction
    /// guarantees arity, so simulator-internal calls cannot panic.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        debug_assert_eq!(inputs.len(), self.arity(), "arity checked at build");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] && inputs[1]),
            CellKind::Nor2 => !(inputs[0] || inputs[1]),
            CellKind::And2 => inputs[0] && inputs[1],
            CellKind::Or2 => inputs[0] || inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Nand3 => !(inputs[0] && inputs[1] && inputs[2]),
            CellKind::Nor3 => !(inputs[0] || inputs[1] || inputs[2]),
            CellKind::And3 => inputs[0] && inputs[1] && inputs[2],
            CellKind::Or3 => inputs[0] || inputs[1] || inputs[2],
            CellKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            // Textbook 2-of-3 majority form, kept as written in logic texts.
            #[allow(clippy::nonminimal_bool)]
            CellKind::Maj3 => {
                (inputs[0] && inputs[1]) || (inputs[1] && inputs[2]) || (inputs[0] && inputs[2])
            }
            CellKind::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
            CellKind::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            CellKind::Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
            CellKind::Tie0 => false,
            CellKind::Tie1 => true,
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_logic_function() {
        // Every kind must evaluate without panicking on a vector of its arity.
        for kind in CellKind::ALL {
            let inputs = vec![true; kind.arity()];
            let _ = kind.eval(&inputs);
        }
    }

    #[test]
    fn truth_tables_spot_checks() {
        assert!(!CellKind::Inv.eval(&[true]));
        assert!(CellKind::Nand2.eval(&[true, false]));
        assert!(!CellKind::Nand2.eval(&[true, true]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(!CellKind::Xor2.eval(&[true, true]));
        // Mux: sel=0 selects a, sel=1 selects b.
        assert!(CellKind::Mux2.eval(&[false, true, false]));
        assert!(!CellKind::Mux2.eval(&[true, true, false]));
        // Majority.
        assert!(CellKind::Maj3.eval(&[true, true, false]));
        assert!(!CellKind::Maj3.eval(&[true, false, false]));
        // AOI21: !((a&b)|c)
        assert!(!CellKind::Aoi21.eval(&[true, true, false]));
        assert!(CellKind::Aoi21.eval(&[true, false, false]));
        // OAI21: !((a|b)&c)
        assert!(!CellKind::Oai21.eval(&[true, false, true]));
        assert!(CellKind::Oai21.eval(&[false, false, true]));
        assert!(!CellKind::Tie0.eval(&[]));
        assert!(CellKind::Tie1.eval(&[]));
    }

    #[test]
    fn xor3_is_parity() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(
                        CellKind::Xor3.eval(&[a, b, c]),
                        a ^ b ^ c,
                        "parity mismatch at {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_word_matches_eval_on_every_truth_table_row() {
        // Pack every truth-table row of a kind into one word, lane per row:
        // lane l's input i is bit i of l. 64 lanes cover all arities (≤ 8
        // rows used; the rest replicate row 0 and must agree too).
        for kind in CellKind::ALL {
            let arity = kind.arity();
            let rows = 1usize << arity;
            let mut words = vec![0u64; arity];
            for lane in 0..64 {
                let row = lane % rows;
                for (i, w) in words.iter_mut().enumerate() {
                    if (row >> i) & 1 == 1 {
                        *w |= 1 << lane;
                    }
                }
            }
            let out = kind.eval_word(&words);
            for lane in 0..64 {
                let row = lane % rows;
                let inputs: Vec<bool> = (0..arity).map(|i| (row >> i) & 1 == 1).collect();
                assert_eq!(
                    (out >> lane) & 1 == 1,
                    kind.eval(&inputs),
                    "{kind}: lane {lane} row {row}"
                );
            }
        }
    }

    #[test]
    fn params_are_physical() {
        for kind in CellKind::ALL {
            let p = kind.params();
            assert!(p.intrinsic_delay >= 0.0, "{kind}: negative delay");
            assert!(p.load_delay >= 0.0, "{kind}: negative load term");
            assert!(p.area > 0.0, "{kind}: non-positive area");
            assert!(p.switch_energy >= 0.0, "{kind}: negative energy");
        }
        // The inverter anchors normalization.
        assert_eq!(CellKind::Inv.params().intrinsic_delay, 1.0);
        assert_eq!(CellKind::Inv.params().area, 1.0);
    }

    #[test]
    fn xor_is_slower_than_nand() {
        // Sanity on relative strengths the delay distributions rely on.
        assert!(CellKind::Xor2.params().intrinsic_delay > CellKind::Nand2.params().intrinsic_delay);
        assert!(CellKind::Maj3.params().intrinsic_delay > CellKind::Nand2.params().intrinsic_delay);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::Maj3.to_string(), "MAJ3");
    }
}
