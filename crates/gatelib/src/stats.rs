//! Netlist statistics: cell counts, area and power estimates.
//!
//! These feed the Sec 6.3 overhead analysis: SynTS's added hardware (Razor
//! shadow latches, sampling counters, the per-core controller) is sized in
//! the same normalized cell units as the pipe-stage netlists, so the
//! power/area overhead ratios are library-consistent.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cell::CellKind;
use crate::netlist::Netlist;
use crate::voltage::Voltage;

/// Static structural statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Instance count per cell kind.
    pub cell_counts: BTreeMap<CellKind, usize>,
    /// Total number of cell instances.
    pub total_cells: usize,
    /// Total area in normalized units (INV = 1.0).
    pub total_area: f64,
    /// Sum of per-cell switching energies — an upper bound on the energy of
    /// a cycle in which every cell toggles once (at 1.0 V).
    pub max_switch_energy: f64,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs (≈ pipeline-register bits the stage needs).
    pub outputs: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    #[must_use]
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut cell_counts: BTreeMap<CellKind, usize> = BTreeMap::new();
        let mut total_area = 0.0;
        let mut max_switch_energy = 0.0;
        for cell in netlist.cells() {
            *cell_counts.entry(cell.kind()).or_insert(0) += 1;
            let p = cell.kind().params();
            total_area += p.area;
            max_switch_energy += p.switch_energy;
        }
        NetlistStats {
            cell_counts,
            total_cells: netlist.cell_count(),
            total_area,
            max_switch_energy,
            inputs: netlist.primary_inputs().len(),
            outputs: netlist.primary_outputs().len(),
        }
    }
}

/// Average-activity dynamic power estimate for a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Normalized switching energy consumed over the run.
    pub energy: f64,
    /// Number of vectors (cycles) in the run.
    pub cycles: u64,
    /// Energy per cycle — proportional to dynamic power at fixed frequency.
    pub energy_per_cycle: f64,
}

impl PowerEstimate {
    /// Builds an estimate from accumulated simulator counters.
    ///
    /// `switch_energy` should come from
    /// [`crate::TimingSim::total_switch_energy`], `cycles` from
    /// [`crate::TimingSim::applied_vectors`].
    #[must_use]
    pub fn from_counters(switch_energy: f64, cycles: u64) -> PowerEstimate {
        PowerEstimate {
            energy: switch_energy,
            cycles,
            energy_per_cycle: if cycles == 0 {
                0.0
            } else {
                switch_energy / cycles as f64
            },
        }
    }

    /// Rescales the estimate to a different supply voltage
    /// (dynamic energy ∝ V²).
    #[must_use]
    pub fn at_voltage(self, from: Voltage, to: Voltage) -> PowerEstimate {
        let k = to.energy_scale() / from.energy_scale();
        PowerEstimate {
            energy: self.energy * k,
            cycles: self.cycles,
            energy_per_cycle: self.energy_per_cycle * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.cell(CellKind::Nand2, &[a, c]).expect("ok");
        let y = b.cell(CellKind::Inv, &[x]).expect("ok");
        b.output(y, "y");
        b.finish().expect("valid")
    }

    #[test]
    fn counts_and_area() {
        let s = NetlistStats::of(&tiny());
        assert_eq!(s.total_cells, 2);
        assert_eq!(s.cell_counts[&CellKind::Nand2], 1);
        assert_eq!(s.cell_counts[&CellKind::Inv], 1);
        let expected_area = CellKind::Nand2.params().area + CellKind::Inv.params().area;
        assert!((s.total_area - expected_area).abs() < 1e-12);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
    }

    #[test]
    fn power_estimate_per_cycle() {
        let p = PowerEstimate::from_counters(10.0, 5);
        assert!((p.energy_per_cycle - 2.0).abs() < 1e-12);
        let zero = PowerEstimate::from_counters(0.0, 0);
        assert_eq!(zero.energy_per_cycle, 0.0);
    }

    #[test]
    fn voltage_rescale_is_quadratic() {
        let p = PowerEstimate::from_counters(10.0, 5);
        let v08 = Voltage::new(0.8).expect("ok");
        let q = p.at_voltage(Voltage::NOMINAL, v08);
        assert!((q.energy - 6.4).abs() < 1e-12);
    }
}
