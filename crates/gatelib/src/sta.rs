//! Static timing analysis: worst-case arrival times and the critical path.
//!
//! STA answers "how slow could this stage possibly be" — the delay the
//! *nominal* clock period `t_nom(V)` must cover (Sec 4.1 of the paper).
//! Dynamic sensitized delays from [`crate::TimingSim`] are provably bounded
//! by the STA arrival times (checked by property tests), which is exactly
//! why timing speculation has room to play: most vectors sensitize paths
//! far shorter than the critical one.

use crate::error::NetlistError;
use crate::netlist::{CellId, NetId, Netlist};
use crate::voltage::Voltage;

/// The worst-case (topological) critical path of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// End-to-end delay of the path at the analysis voltage.
    pub delay: f64,
    /// Cells along the path, input side first.
    pub cells: Vec<CellId>,
    /// The primary output where the path terminates.
    pub endpoint: NetId,
}

/// Result of static timing analysis at a fixed voltage.
///
/// ```
/// use gatelib::{CellKind, NetlistBuilder, StaticTiming, Voltage};
/// # fn main() -> Result<(), gatelib::NetlistError> {
/// let mut b = NetlistBuilder::new("chain");
/// let a = b.input("a");
/// let x = b.cell(CellKind::Inv, &[a])?;
/// let y = b.cell(CellKind::Inv, &[x])?;
/// b.output(y, "y");
/// let n = b.finish()?;
/// let sta = StaticTiming::analyze(&n, Voltage::NOMINAL)?;
/// assert_eq!(sta.critical_path().cells.len(), 2);
/// assert!((sta.critical_path().delay - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaticTiming {
    arrival: Vec<f64>,
    critical: CriticalPath,
    voltage: Voltage,
}

impl StaticTiming {
    /// Runs STA on `netlist` at supply voltage `voltage`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutputs`] if the netlist declares no
    /// primary outputs (nothing to time).
    pub fn analyze(netlist: &Netlist, voltage: Voltage) -> Result<StaticTiming, NetlistError> {
        StaticTiming::analyze_impl(netlist, voltage, None)
    }

    /// Runs STA with per-cell delay factors (a process-variation or aging
    /// die instance from [`crate::variation`]).
    ///
    /// # Errors
    ///
    /// As [`StaticTiming::analyze`], plus
    /// [`NetlistError::FactorCountMismatch`] if `factors` does not cover
    /// exactly the netlist's cells.
    pub fn analyze_with_factors(
        netlist: &Netlist,
        voltage: Voltage,
        factors: &crate::variation::DelayFactors,
    ) -> Result<StaticTiming, NetlistError> {
        if factors.len() != netlist.cell_count() {
            return Err(NetlistError::FactorCountMismatch {
                expected: netlist.cell_count(),
                got: factors.len(),
            });
        }
        StaticTiming::analyze_impl(netlist, voltage, Some(factors))
    }

    fn analyze_impl(
        netlist: &Netlist,
        voltage: Voltage,
        factors: Option<&crate::variation::DelayFactors>,
    ) -> Result<StaticTiming, NetlistError> {
        netlist.check_invariants()?;
        let scale = voltage.delay_scale();
        let mut arrival = vec![0.0f64; netlist.net_count()];
        // `from[net]` = cell producing the worst arrival at that net.
        let mut from: Vec<Option<CellId>> = vec![None; netlist.net_count()];
        for (idx, cell) in netlist.cells().iter().enumerate() {
            let cid = CellId(u32::try_from(idx).expect("netlist size checked at build"));
            let worst_in = cell
                .inputs()
                .iter()
                .map(|n| arrival[n.index()])
                .fold(0.0f64, f64::max);
            let f = factors.map_or(1.0, |fs| fs.as_slice()[idx]);
            let d = netlist.cell_delay_v1(cid) * scale * f;
            arrival[cell.output().index()] = worst_in + d;
            from[cell.output().index()] = Some(cid);
        }
        // Critical endpoint = worst primary output.
        let (&endpoint, _) = netlist
            .primary_outputs()
            .iter()
            .map(|n| (n, arrival[n.index()]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("delays are finite"))
            .expect("outputs checked non-empty");
        // Back-track the path.
        let mut cells = Vec::new();
        let mut net = endpoint;
        while let Some(cid) = from[net.index()] {
            cells.push(cid);
            let cell = netlist.cell(cid).expect("id from analysis");
            // Follow the worst input.
            let next = cell
                .inputs()
                .iter()
                .max_by(|a, b| {
                    arrival[a.index()]
                        .partial_cmp(&arrival[b.index()])
                        .expect("delays are finite")
                })
                .copied();
            match next {
                Some(n) => net = n,
                None => break, // tie cell: path starts here
            }
        }
        cells.reverse();
        let critical = CriticalPath {
            delay: arrival[endpoint.index()],
            cells,
            endpoint,
        };
        Ok(StaticTiming {
            arrival,
            critical,
            voltage,
        })
    }

    /// Worst-case arrival time at `net` (0 for primary inputs).
    #[must_use]
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// The topological critical path.
    #[must_use]
    pub fn critical_path(&self) -> &CriticalPath {
        &self.critical
    }

    /// The voltage this analysis was performed at.
    #[must_use]
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// The nominal clock period for this stage at the analysis voltage:
    /// the critical-path delay (the paper's `t_nom(V)`, guard-band-free
    /// "point of first failure" definition).
    #[must_use]
    pub fn nominal_period(&self) -> f64 {
        self.critical.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;

    fn adder_chain(n: usize) -> Netlist {
        // Ripple of MAJ3 carries: worst path grows linearly.
        let mut b = NetlistBuilder::new("ripple");
        let mut carry = b.input("cin");
        for i in 0..n {
            let a = b.input(format!("a{i}"));
            let x = b.input(format!("b{i}"));
            let s = b.cell(CellKind::Xor3, &[a, x, carry]).expect("ok");
            carry = b.cell(CellKind::Maj3, &[a, x, carry]).expect("ok");
            b.output(s, format!("s{i}"));
        }
        b.output(carry, "cout");
        b.finish().expect("valid")
    }

    #[test]
    fn critical_path_grows_with_chain_length() {
        let short = StaticTiming::analyze(&adder_chain(2), Voltage::NOMINAL).expect("sta");
        let long = StaticTiming::analyze(&adder_chain(8), Voltage::NOMINAL).expect("sta");
        assert!(long.nominal_period() > short.nominal_period());
    }

    #[test]
    fn voltage_scaling_scales_period_per_table_5_1() {
        let n = adder_chain(4);
        let at_nominal = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("sta");
        let low_v = Voltage::new(0.8).expect("in range");
        let at_low = StaticTiming::analyze(&n, low_v).expect("sta");
        let ratio = at_low.nominal_period() / at_nominal.nominal_period();
        assert!(
            (ratio - 1.39).abs() < 1e-9,
            "0.8 V multiplier should be 1.39, got {ratio}"
        );
    }

    #[test]
    fn critical_path_endpoint_is_a_primary_output() {
        let n = adder_chain(4);
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("sta");
        assert!(n.primary_outputs().contains(&sta.critical_path().endpoint));
    }

    #[test]
    fn path_cells_are_connected() {
        let n = adder_chain(5);
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("sta");
        let path = &sta.critical_path().cells;
        assert!(!path.is_empty());
        // Each consecutive pair must be driver -> consumer.
        for w in path.windows(2) {
            let out = n.cell(w[0]).expect("cell").output();
            let consumer = n.cell(w[1]).expect("cell");
            assert!(consumer.inputs().contains(&out), "path cells not connected");
        }
    }

    #[test]
    fn arrival_zero_at_inputs() {
        let n = adder_chain(3);
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("sta");
        for &pi in n.primary_inputs() {
            assert_eq!(sta.arrival(pi), 0.0);
        }
    }
}
