//! Structural-netlist export: gate-level Verilog and a simple statistics
//! report — the interchange surface a downstream EDA flow would consume.

use std::fmt::Write as _;

use crate::cell::CellKind;
use crate::netlist::Netlist;

fn net_name(netlist: &Netlist, idx: usize) -> String {
    // Primary inputs keep their declared names; everything else gets a
    // synthesized wire name.
    if let Some(pos) = netlist
        .primary_inputs()
        .iter()
        .position(|n| n.index() == idx)
    {
        sanitized(netlist.input_name(pos).unwrap_or("pi"))
    } else {
        format!("n{idx}")
    }
}

fn sanitized(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Emits the netlist as structural Verilog over a generic gate library
/// (`INV`, `NAND2`, …, instantiated by name with positional pins
/// `(out, in...)`).
///
/// The output is deterministic and synthesizable against any library that
/// provides the [`CellKind`] cell set; round-trip fidelity is checked by
/// tests that re-derive gate counts from the emitted text.
#[must_use]
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let module = sanitized(netlist.name());
    let inputs: Vec<String> = (0..netlist.primary_inputs().len())
        .map(|i| sanitized(netlist.input_name(i).unwrap_or("pi")))
        .collect();
    let outputs: Vec<String> = (0..netlist.primary_outputs().len())
        .map(|i| sanitized(netlist.output_name(i).unwrap_or("po")))
        .collect();

    let _ = writeln!(
        out,
        "module {module} ({});",
        inputs
            .iter()
            .chain(outputs.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    // Internal wires: every cell output.
    for cell in netlist.cells() {
        let _ = writeln!(out, "  wire n{};", cell.output().index());
    }
    // Gate instances.
    for (k, cell) in netlist.cells().iter().enumerate() {
        let pins: Vec<String> = std::iter::once(format!("n{}", cell.output().index()))
            .chain(cell.inputs().iter().map(|n| net_name(netlist, n.index())))
            .collect();
        let _ = writeln!(out, "  {} g{k} ({});", cell.kind().name(), pins.join(", "));
    }
    // Output assigns.
    for (i, po) in netlist.primary_outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  assign {} = {};",
            outputs[i],
            net_name(netlist, po.index())
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// A one-line synthesis-style summary: `cells=... area=... depth=...`.
#[must_use]
pub fn summary_line(netlist: &Netlist) -> String {
    let stats = crate::stats::NetlistStats::of(netlist);
    let depth = crate::sta::StaticTiming::analyze(netlist, crate::voltage::Voltage::NOMINAL)
        .map(|s| s.critical_path().cells.len())
        .unwrap_or(0);
    format!(
        "{}: cells={} area={:.1} inputs={} outputs={} logic_depth={}",
        netlist.name(),
        stats.total_cells,
        stats.total_area,
        stats.inputs,
        stats.outputs,
        depth
    )
}

/// Per-kind gate census in a stable, diff-friendly format.
#[must_use]
pub fn gate_census(netlist: &Netlist) -> String {
    let stats = crate::stats::NetlistStats::of(netlist);
    let mut out = String::new();
    for kind in CellKind::ALL {
        if let Some(&count) = stats.cell_counts.get(&kind) {
            let _ = writeln!(out, "{:>6} {}", count, kind.name());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa 1"); // space exercises sanitize
        let a = b.input("a");
        let x = b.input("b[0]");
        let cin = b.input("cin");
        let s = b.cell(CellKind::Xor3, &[a, x, cin]).expect("ok");
        let co = b.cell(CellKind::Maj3, &[a, x, cin]).expect("ok");
        b.output(s, "sum");
        b.output(co, "cout");
        b.finish().expect("valid")
    }

    #[test]
    fn verilog_has_module_ports_and_gates() {
        let v = to_verilog(&adder());
        assert!(v.starts_with("module fa_1 ("));
        assert!(v.contains("input a;"));
        assert!(v.contains("input b_0_;"), "bus name sanitized");
        assert!(v.contains("output sum;"));
        assert!(v.contains("XOR3 g0"));
        assert!(v.contains("MAJ3 g1"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_gate_count_matches_netlist() {
        let n = adder();
        let v = to_verilog(&n);
        let instances = v
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_uppercase()))
            .count();
        assert_eq!(instances, n.cell_count());
    }

    #[test]
    fn verilog_is_deterministic() {
        assert_eq!(to_verilog(&adder()), to_verilog(&adder()));
    }

    #[test]
    fn summary_and_census() {
        let n = adder();
        let s = summary_line(&n);
        assert!(s.contains("cells=2"));
        assert!(s.contains("logic_depth=1"));
        let c = gate_census(&n);
        assert!(c.contains("1 XOR3"));
        assert!(c.contains("1 MAJ3"));
    }

    #[test]
    fn stage_netlists_export_cleanly() {
        // The real stage circuits should produce non-trivial Verilog.
        use crate::netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("chain");
        let mut n = b.input("x");
        for _ in 0..10 {
            n = b.cell(CellKind::Inv, &[n]).expect("ok");
        }
        b.output(n, "y");
        let net = b.finish().expect("valid");
        let v = to_verilog(&net);
        assert_eq!(v.matches("INV").count(), 10);
    }
}
