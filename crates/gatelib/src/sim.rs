//! Event-driven dynamic timing simulation.
//!
//! [`TimingSim`] replays cycle-by-cycle input vectors against a netlist and
//! reports, for every vector, the **sensitized path delay**: the time at
//! which the last primary output settles, under the single-transition
//! (glitch-free) delay model the paper's cross-layer flow uses. A timing
//! error occurs at clock period `t_clk` exactly when this delay exceeds
//! `t_clk` — the event a Razor flip-flop would catch.
//!
//! The simulator is incremental: only cells downstream of changed nets are
//! re-evaluated. Because [`crate::NetlistBuilder`] guarantees that cell ids
//! are a topological order, processing dirty cells in ascending id order
//! evaluates every cell at most once per cycle with all inputs settled.
//!
//! The inner loop is allocation-free: net values live in a bit-packed word
//! array, the dirty set is a reused bitset consumed in ascending cell-id
//! order, and [`TimingSim::step`] reports a transition without
//! materializing the output vector. [`TimingSim::apply`] layers the
//! output-carrying [`Transition`] on top for callers that want it.

use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::voltage::Voltage;

/// Outcome of applying one input vector to a [`TimingSim`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Sensitized path delay: when the last primary output settled, in
    /// normalized delay units at the simulation voltage. `0.0` if no output
    /// toggled (the vector cannot cause a timing error).
    pub delay: f64,
    /// Number of nets that toggled during this transition.
    pub toggles: u32,
    /// Primary output values after the transition, in declaration order.
    pub outputs: Vec<bool>,
}

impl Transition {
    /// Packs up to 64 primary outputs into a word, output 0 in bit 0.
    ///
    /// Outputs beyond the 64th are ignored; callers with wider buses should
    /// read [`Transition::outputs`] directly.
    #[must_use]
    pub fn output_bits(&self) -> u64 {
        self.outputs
            .iter()
            .take(64)
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }
}

/// Allocation-free summary of one input vector: what [`TimingSim::step`]
/// returns when the caller does not need the output values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Step {
    /// Sensitized path delay of the transition (see [`Transition::delay`]).
    pub delay: f64,
    /// Number of nets that toggled during this transition.
    pub toggles: u32,
}

/// Event-driven timing simulator bound to one netlist and voltage.
///
/// The first [`TimingSim::apply`] establishes the electrical state and
/// reports zero delay; every subsequent call reports the sensitized delay of
/// the transition from the previous vector — matching how the paper derives
/// per-instruction delays from consecutive pipeline input vectors.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct TimingSim {
    netlist: Netlist,
    voltage: Voltage,
    /// Per-cell propagation delay at the current voltage.
    delay: Vec<f64>,
    /// Per-net logic value, bit-packed (net `i` → word `i / 64`, bit
    /// `i % 64`).
    values: Vec<u64>,
    /// Per-net arrival time, meaningful when `net_stamp[net] == cycle`.
    arrival: Vec<f64>,
    /// Cycle at which the net last toggled.
    net_stamp: Vec<u64>,
    /// Reusable dirty set: cell is dirty this cycle iff
    /// `cell_stamp[cell] == cycle`. Stamping makes clearing free (no
    /// per-cycle reset) and marking idempotent without a read-modify-write.
    cell_stamp: Vec<u64>,
    /// First and last dirty cell id of the current cycle (scan window).
    dirty_lo: usize,
    dirty_hi: usize,
    cycle: u64,
    initialized: bool,
    total_toggles: u64,
    total_switch_energy: f64,
    applies: u64,
}

impl TimingSim {
    /// Creates a simulator for `netlist` at supply voltage `voltage`.
    ///
    /// The netlist is cloned so the simulator is self-contained and `Send`.
    ///
    /// # Errors
    ///
    /// Returns any [`NetlistError`] from
    /// [`Netlist::check_invariants`] — in particular
    /// [`NetlistError::NoOutputs`] when there is nothing to time.
    pub fn new(netlist: &Netlist, voltage: Voltage) -> Result<TimingSim, NetlistError> {
        let scale = voltage.delay_scale();
        let delay = netlist.cell_delays_v1().iter().map(|d| d * scale).collect();
        TimingSim::with_delays(netlist, voltage, delay)
    }

    /// Creates a simulator whose per-cell delays carry the multiplicative
    /// factors of a specific die instance (process variation and/or aging
    /// from [`crate::variation`]).
    ///
    /// # Errors
    ///
    /// As [`TimingSim::new`], plus [`NetlistError::FactorCountMismatch`]
    /// if `factors` does not cover exactly the netlist's cells.
    pub fn with_factors(
        netlist: &Netlist,
        voltage: Voltage,
        factors: &crate::variation::DelayFactors,
    ) -> Result<TimingSim, NetlistError> {
        if factors.len() != netlist.cell_count() {
            return Err(NetlistError::FactorCountMismatch {
                expected: netlist.cell_count(),
                got: factors.len(),
            });
        }
        let scale = voltage.delay_scale();
        let delay = netlist
            .cell_delays_v1()
            .iter()
            .zip(factors.as_slice())
            .map(|(d, f)| d * scale * f)
            .collect();
        TimingSim::with_delays(netlist, voltage, delay)
    }

    fn with_delays(
        netlist: &Netlist,
        voltage: Voltage,
        delay: Vec<f64>,
    ) -> Result<TimingSim, NetlistError> {
        netlist.check_invariants()?;
        Ok(TimingSim {
            voltage,
            delay,
            values: vec![0; netlist.net_count().div_ceil(64).max(1)],
            arrival: vec![0.0; netlist.net_count()],
            net_stamp: vec![0; netlist.net_count()],
            cell_stamp: vec![0; netlist.cell_count()],
            dirty_lo: 0,
            dirty_hi: 0,
            cycle: 0,
            initialized: false,
            total_toggles: 0,
            total_switch_energy: 0.0,
            applies: 0,
            netlist: netlist.clone(),
        })
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current supply voltage.
    #[must_use]
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// Changes the supply voltage without disturbing logic state.
    ///
    /// Used by the online sampling phase, which sweeps operating points
    /// mid-trace (paper Sec 4.3).
    pub fn set_voltage(&mut self, voltage: Voltage) {
        let scale = voltage.delay_scale();
        for (d, base) in self.delay.iter_mut().zip(self.netlist.cell_delays_v1()) {
            *d = base * scale;
        }
        self.voltage = voltage;
    }

    /// Cumulative net toggles since construction (switching activity).
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.total_toggles
    }

    /// Cumulative normalized switching energy since construction
    /// (cell switch energies × V², summed over toggles).
    #[must_use]
    pub fn total_switch_energy(&self) -> f64 {
        self.total_switch_energy
    }

    /// Number of vectors applied so far.
    #[must_use]
    pub fn applied_vectors(&self) -> u64 {
        self.applies
    }

    #[inline]
    fn value(&self, net: usize) -> bool {
        (self.values[net >> 6] >> (net & 63)) & 1 == 1
    }

    #[inline]
    fn flip_value(&mut self, net: usize) {
        self.values[net >> 6] ^= 1 << (net & 63);
    }

    /// Current primary output values.
    #[must_use]
    pub fn outputs(&self) -> Vec<bool> {
        let mut out = Vec::new();
        self.outputs_into(&mut out);
        out
    }

    /// Writes the current primary output values into `out` (cleared
    /// first) — the reusable-buffer form of [`TimingSim::outputs`].
    pub fn outputs_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend(
            self.netlist
                .primary_outputs()
                .iter()
                .map(|n| self.value(n.index())),
        );
    }

    /// Packs up to 64 primary outputs into a word, output 0 in bit 0 —
    /// the allocation-free form of [`Transition::output_bits`].
    #[must_use]
    pub fn output_word(&self) -> u64 {
        self.netlist
            .primary_outputs()
            .iter()
            .take(64)
            .enumerate()
            .fold(0u64, |acc, (i, n)| {
                acc | u64::from(self.value(n.index())) << i
            })
    }

    /// Applies one input vector; returns the transition's sensitized delay,
    /// toggle count and resulting outputs.
    ///
    /// The first call initializes state and reports `delay == 0.0`.
    ///
    /// Hot loops that do not need the output values should call
    /// [`TimingSim::step`], which performs no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// supply one value per primary input.
    pub fn apply(&mut self, inputs: &[bool]) -> Result<Transition, NetlistError> {
        let step = self.step(inputs)?;
        Ok(Transition {
            delay: step.delay,
            toggles: step.toggles,
            outputs: self.outputs(),
        })
    }

    /// Applies one input vector without materializing outputs — the
    /// zero-allocation inner loop of the characterization pipeline.
    ///
    /// Semantically identical to [`TimingSim::apply`] (same delays, same
    /// toggle counts, same state evolution); read outputs afterwards with
    /// [`TimingSim::output_word`] or [`TimingSim::outputs_into`] if needed.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// supply one value per primary input.
    pub fn step(&mut self, inputs: &[bool]) -> Result<Step, NetlistError> {
        let n_pi = self.netlist.primary_inputs().len();
        if inputs.len() != n_pi {
            return Err(NetlistError::InputWidthMismatch {
                expected: n_pi,
                got: inputs.len(),
            });
        }
        self.applies += 1;
        if !self.initialized {
            self.initialize(inputs);
            return Ok(Step {
                delay: 0.0,
                toggles: 0,
            });
        }

        self.cycle += 1;
        let cycle = self.cycle;
        let energy_scale = self.voltage.energy_scale();
        let mut toggles: u32 = 0;
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;

        // Stage 1: primary input transitions.
        for i in 0..n_pi {
            let pi = self.netlist.primary_inputs()[i].index();
            if self.value(pi) != inputs[i] {
                self.flip_value(pi);
                self.arrival[pi] = 0.0;
                self.net_stamp[pi] = cycle;
                toggles += 1;
                self.mark_fanout(pi, cycle);
            }
        }

        // Stage 2: sweep dirty cells in id order — cell ids are a
        // topological order, so by the time a cell is visited all its
        // drivers have settled, and newly dirtied cells always lie ahead.
        if self.dirty_lo != usize::MAX {
            let mut pins: [bool; 3] = [false; 3];
            let mut idx = self.dirty_lo;
            // `dirty_hi` can grow while the sweep runs (fanout marking);
            // re-read it every iteration.
            while idx <= self.dirty_hi {
                if self.cell_stamp[idx] == cycle {
                    let cell = &self.netlist.cells()[idx];
                    let n_in = cell.inputs().len();
                    for (slot, n) in pins.iter_mut().zip(cell.inputs()) {
                        *slot = self.value(n.index());
                    }
                    let new_val = cell.kind().eval(&pins[..n_in]);
                    let out = cell.output().index();
                    if new_val != self.value(out) {
                        // Arrival = gate delay + latest *changed* input.
                        let worst_in = cell
                            .inputs()
                            .iter()
                            .filter(|n| self.net_stamp[n.index()] == cycle)
                            .map(|n| self.arrival[n.index()])
                            .fold(0.0f64, f64::max);
                        let switch_energy = cell.kind().params().switch_energy;
                        self.flip_value(out);
                        self.arrival[out] = worst_in + self.delay[idx];
                        self.net_stamp[out] = cycle;
                        toggles += 1;
                        self.total_switch_energy += switch_energy * energy_scale;
                        self.mark_fanout(out, cycle);
                    }
                }
                idx += 1;
            }
        }
        self.total_toggles += u64::from(toggles);

        // Stage 3: delay = latest-settling changed primary output.
        let delay = self
            .netlist
            .primary_outputs()
            .iter()
            .filter(|n| self.net_stamp[n.index()] == cycle)
            .map(|n| self.arrival[n.index()])
            .fold(0.0f64, f64::max);

        Ok(Step { delay, toggles })
    }

    #[inline]
    fn mark_fanout(&mut self, net: usize, cycle: u64) {
        for &cid in self.netlist.fanout_of(crate::netlist::NetId(net as u32)) {
            let idx = cid.index();
            if self.cell_stamp[idx] != cycle {
                self.cell_stamp[idx] = cycle;
                self.dirty_lo = self.dirty_lo.min(idx);
                self.dirty_hi = self.dirty_hi.max(idx);
            }
        }
    }

    fn initialize(&mut self, inputs: &[bool]) {
        for i in 0..inputs.len() {
            let pi = self.netlist.primary_inputs()[i].index();
            if self.value(pi) != inputs[i] {
                self.flip_value(pi);
            }
        }
        let mut pins: [bool; 3] = [false; 3];
        for idx in 0..self.netlist.cell_count() {
            let cell = &self.netlist.cells()[idx];
            let n_in = cell.inputs().len();
            for (slot, n) in pins.iter_mut().zip(cell.inputs()) {
                *slot = self.value(n.index());
            }
            let v = cell.kind().eval(&pins[..n_in]);
            let out = cell.output().index();
            if self.value(out) != v {
                self.flip_value(out);
            }
        }
        self.initialized = true;
    }

    /// Convenience: applies a little-endian bit-encoded vector.
    ///
    /// Bit `i` of `word` feeds primary input `i`. Inputs beyond 64 are set
    /// to `false`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from [`Self::apply`].
    pub fn apply_word(&mut self, word: u64) -> Result<Transition, NetlistError> {
        let n = self.netlist.primary_inputs().len();
        let bits: Vec<bool> = (0..n).map(|i| i < 64 && (word >> i) & 1 == 1).collect();
        self.apply(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::sta::StaticTiming;

    fn ripple_adder(bits: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", bits);
        let x = b.input_bus("b", bits);
        let mut carry = b.const0().expect("ok");
        let mut sums = Vec::new();
        for i in 0..bits {
            let s = b.cell(CellKind::Xor3, &[a[i], x[i], carry]).expect("ok");
            carry = b.cell(CellKind::Maj3, &[a[i], x[i], carry]).expect("ok");
            sums.push(s);
        }
        b.output_bus(&sums, "s");
        b.output(carry, "cout");
        b.finish().expect("valid")
    }

    fn adder_inputs(bits: usize, a: u64, b: u64) -> Vec<bool> {
        let mut v = Vec::with_capacity(bits * 2);
        for i in 0..bits {
            v.push((a >> i) & 1 == 1);
        }
        for i in 0..bits {
            v.push((b >> i) & 1 == 1);
        }
        v
    }

    #[test]
    fn first_apply_reports_zero_delay() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let t = sim.apply(&adder_inputs(4, 5, 9)).expect("apply");
        assert_eq!(t.delay, 0.0);
        assert_eq!(t.output_bits() & 0xF, (5 + 9) & 0xF);
    }

    #[test]
    fn functional_agreement_with_reference_eval() {
        let n = ripple_adder(6);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut state: u64 = 0x2F;
        for step in 0..200u64 {
            // Cheap LCG for deterministic pseudo-random vectors.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = state & 0x3F;
            let b = (state >> 6) & 0x3F;
            let inputs = adder_inputs(6, a, b);
            let t = sim.apply(&inputs).expect("apply");
            let reference = n.evaluate(&inputs).expect("eval");
            assert_eq!(t.outputs, reference, "divergence at step {step}");
            let sum = (a + b) & 0x7F;
            assert_eq!(t.output_bits() & 0x7F, sum, "bad sum at step {step}");
        }
    }

    #[test]
    fn step_matches_apply_bit_for_bit() {
        let n = ripple_adder(8);
        let mut via_apply = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut via_step = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut state: u64 = 99;
        let mut buf = Vec::new();
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let inputs = adder_inputs(8, state & 0xFF, (state >> 8) & 0xFF);
            let t = via_apply.apply(&inputs).expect("apply");
            let s = via_step.step(&inputs).expect("step");
            assert_eq!(t.delay.to_bits(), s.delay.to_bits());
            assert_eq!(t.toggles, s.toggles);
            assert_eq!(t.output_bits(), via_step.output_word());
            via_step.outputs_into(&mut buf);
            assert_eq!(t.outputs, buf);
        }
        assert_eq!(via_apply.total_toggles(), via_step.total_toggles());
        assert_eq!(
            via_apply.total_switch_energy().to_bits(),
            via_step.total_switch_energy().to_bits()
        );
    }

    #[test]
    fn long_carry_is_slower_than_short_carry() {
        let n = ripple_adder(8);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&adder_inputs(8, 0, 0)).expect("init");
        // 0xFF + 1 ripples the carry through all 8 positions.
        let long = sim.apply(&adder_inputs(8, 0xFF, 1)).expect("apply").delay;
        sim.apply(&adder_inputs(8, 0, 0)).expect("reset");
        // 1 + 1 only disturbs the low bits.
        let short = sim.apply(&adder_inputs(8, 1, 1)).expect("apply").delay;
        assert!(
            long > short * 2.0,
            "carry ripple must dominate: long={long}, short={short}"
        );
    }

    #[test]
    fn dynamic_delay_bounded_by_sta() {
        let n = ripple_adder(8);
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("sta");
        let bound = sta.nominal_period() + 1e-9;
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut state: u64 = 7;
        for _ in 0..500 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let t = sim
                .apply(&adder_inputs(8, state & 0xFF, (state >> 8) & 0xFF))
                .expect("apply");
            assert!(
                t.delay <= bound,
                "dynamic {} exceeds STA {}",
                t.delay,
                bound
            );
        }
    }

    #[test]
    fn voltage_scales_dynamic_delay() {
        let n = ripple_adder(8);
        let worst = adder_inputs(8, 0xFF, 1);
        let zero = adder_inputs(8, 0, 0);

        let mut hi = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        hi.apply(&zero).expect("init");
        let d_hi = hi.apply(&worst).expect("apply").delay;

        let mut lo = TimingSim::new(&n, Voltage::new(0.72).expect("ok")).expect("sim");
        lo.apply(&zero).expect("init");
        let d_lo = lo.apply(&worst).expect("apply").delay;

        let ratio = d_lo / d_hi;
        assert!(
            (ratio - 1.63).abs() < 1e-9,
            "0.72 V multiplier, got {ratio}"
        );
    }

    #[test]
    fn set_voltage_preserves_state() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&adder_inputs(4, 3, 4)).expect("init");
        let before = sim.outputs();
        sim.set_voltage(Voltage::new(0.8).expect("ok"));
        assert_eq!(sim.outputs(), before);
        // Re-applying the same vector causes no toggles and no delay.
        let t = sim.apply(&adder_inputs(4, 3, 4)).expect("apply");
        assert_eq!(t.toggles, 0);
        assert_eq!(t.delay, 0.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        assert!(matches!(
            sim.apply(&[true, false]).expect_err("short"),
            NetlistError::InputWidthMismatch { .. }
        ));
    }

    #[test]
    fn toggle_energy_accumulates() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&adder_inputs(4, 0, 0)).expect("init");
        sim.apply(&adder_inputs(4, 0xF, 1)).expect("apply");
        assert!(sim.total_toggles() > 0);
        assert!(sim.total_switch_energy() > 0.0);
    }

    #[test]
    fn apply_word_matches_apply() {
        let n = ripple_adder(4);
        let mut s1 = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut s2 = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        for word in [0u64, 0x13, 0xFF, 0xA5] {
            let bits: Vec<bool> = (0..8).map(|i| (word >> i) & 1 == 1).collect();
            let a = s1.apply(&bits).expect("ok");
            let b = s2.apply_word(word).expect("ok");
            assert_eq!(a, b);
        }
    }
}
