//! Event-driven dynamic timing simulation.
//!
//! [`TimingSim`] replays cycle-by-cycle input vectors against a netlist and
//! reports, for every vector, the **sensitized path delay**: the time at
//! which the last primary output settles, under the single-transition
//! (glitch-free) delay model the paper's cross-layer flow uses. A timing
//! error occurs at clock period `t_clk` exactly when this delay exceeds
//! `t_clk` — the event a Razor flip-flop would catch.
//!
//! The simulator is incremental: only cells downstream of changed nets are
//! re-evaluated. Because [`crate::NetlistBuilder`] guarantees that cell ids
//! are a topological order, processing dirty cells in ascending id order
//! evaluates every cell at most once per cycle with all inputs settled.

use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::voltage::Voltage;

/// Outcome of applying one input vector to a [`TimingSim`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Sensitized path delay: when the last primary output settled, in
    /// normalized delay units at the simulation voltage. `0.0` if no output
    /// toggled (the vector cannot cause a timing error).
    pub delay: f64,
    /// Number of nets that toggled during this transition.
    pub toggles: u32,
    /// Primary output values after the transition, in declaration order.
    pub outputs: Vec<bool>,
}

impl Transition {
    /// Packs up to 64 primary outputs into a word, output 0 in bit 0.
    ///
    /// Outputs beyond the 64th are ignored; callers with wider buses should
    /// read [`Transition::outputs`] directly.
    #[must_use]
    pub fn output_bits(&self) -> u64 {
        self.outputs
            .iter()
            .take(64)
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }
}

/// Event-driven timing simulator bound to one netlist and voltage.
///
/// The first [`TimingSim::apply`] establishes the electrical state and
/// reports zero delay; every subsequent call reports the sensitized delay of
/// the transition from the previous vector — matching how the paper derives
/// per-instruction delays from consecutive pipeline input vectors.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct TimingSim {
    netlist: Netlist,
    voltage: Voltage,
    /// Per-cell propagation delay at the current voltage.
    delay: Vec<f64>,
    /// Per-net logic value.
    values: Vec<bool>,
    /// Per-net arrival time, meaningful when `net_stamp[net] == cycle`.
    arrival: Vec<f64>,
    /// Cycle at which the net last toggled.
    net_stamp: Vec<u64>,
    /// Cycle at which the cell was marked dirty.
    cell_stamp: Vec<u64>,
    /// First and last dirty cell id of the current cycle (scan window).
    dirty_lo: usize,
    dirty_hi: usize,
    cycle: u64,
    initialized: bool,
    total_toggles: u64,
    total_switch_energy: f64,
    applies: u64,
}

impl TimingSim {
    /// Creates a simulator for `netlist` at supply voltage `voltage`.
    ///
    /// The netlist is cloned so the simulator is self-contained and `Send`.
    ///
    /// # Errors
    ///
    /// Returns any [`NetlistError`] from
    /// [`Netlist::check_invariants`] — in particular
    /// [`NetlistError::NoOutputs`] when there is nothing to time.
    pub fn new(netlist: &Netlist, voltage: Voltage) -> Result<TimingSim, NetlistError> {
        let scale = voltage.delay_scale();
        let delay = netlist.cell_delays_v1().iter().map(|d| d * scale).collect();
        TimingSim::with_delays(netlist, voltage, delay)
    }

    /// Creates a simulator whose per-cell delays carry the multiplicative
    /// factors of a specific die instance (process variation and/or aging
    /// from [`crate::variation`]).
    ///
    /// # Errors
    ///
    /// As [`TimingSim::new`], plus [`NetlistError::FactorCountMismatch`]
    /// if `factors` does not cover exactly the netlist's cells.
    pub fn with_factors(
        netlist: &Netlist,
        voltage: Voltage,
        factors: &crate::variation::DelayFactors,
    ) -> Result<TimingSim, NetlistError> {
        if factors.len() != netlist.cell_count() {
            return Err(NetlistError::FactorCountMismatch {
                expected: netlist.cell_count(),
                got: factors.len(),
            });
        }
        let scale = voltage.delay_scale();
        let delay = netlist
            .cell_delays_v1()
            .iter()
            .zip(factors.as_slice())
            .map(|(d, f)| d * scale * f)
            .collect();
        TimingSim::with_delays(netlist, voltage, delay)
    }

    fn with_delays(
        netlist: &Netlist,
        voltage: Voltage,
        delay: Vec<f64>,
    ) -> Result<TimingSim, NetlistError> {
        netlist.check_invariants()?;
        Ok(TimingSim {
            voltage,
            delay,
            values: vec![false; netlist.net_count()],
            arrival: vec![0.0; netlist.net_count()],
            net_stamp: vec![0; netlist.net_count()],
            cell_stamp: vec![0; netlist.cell_count()],
            dirty_lo: 0,
            dirty_hi: 0,
            cycle: 0,
            initialized: false,
            total_toggles: 0,
            total_switch_energy: 0.0,
            applies: 0,
            netlist: netlist.clone(),
        })
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current supply voltage.
    #[must_use]
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// Changes the supply voltage without disturbing logic state.
    ///
    /// Used by the online sampling phase, which sweeps operating points
    /// mid-trace (paper Sec 4.3).
    pub fn set_voltage(&mut self, voltage: Voltage) {
        let scale = voltage.delay_scale();
        for (d, base) in self.delay.iter_mut().zip(self.netlist.cell_delays_v1()) {
            *d = base * scale;
        }
        self.voltage = voltage;
    }

    /// Cumulative net toggles since construction (switching activity).
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.total_toggles
    }

    /// Cumulative normalized switching energy since construction
    /// (cell switch energies × V², summed over toggles).
    #[must_use]
    pub fn total_switch_energy(&self) -> f64 {
        self.total_switch_energy
    }

    /// Number of vectors applied so far.
    #[must_use]
    pub fn applied_vectors(&self) -> u64 {
        self.applies
    }

    /// Current primary output values.
    #[must_use]
    pub fn outputs(&self) -> Vec<bool> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|n| self.values[n.index()])
            .collect()
    }

    /// Applies one input vector; returns the transition's sensitized delay,
    /// toggle count and resulting outputs.
    ///
    /// The first call initializes state and reports `delay == 0.0`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// supply one value per primary input.
    pub fn apply(&mut self, inputs: &[bool]) -> Result<Transition, NetlistError> {
        let n_pi = self.netlist.primary_inputs().len();
        if inputs.len() != n_pi {
            return Err(NetlistError::InputWidthMismatch {
                expected: n_pi,
                got: inputs.len(),
            });
        }
        self.applies += 1;
        if !self.initialized {
            self.initialize(inputs);
            return Ok(Transition {
                delay: 0.0,
                toggles: 0,
                outputs: self.outputs(),
            });
        }

        self.cycle += 1;
        let cycle = self.cycle;
        let energy_scale = self.voltage.energy_scale();
        let mut toggles: u32 = 0;
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;

        // Stage 1: primary input transitions.
        for i in 0..n_pi {
            let pi = self.netlist.primary_inputs()[i];
            if self.values[pi.index()] != inputs[i] {
                self.values[pi.index()] = inputs[i];
                self.arrival[pi.index()] = 0.0;
                self.net_stamp[pi.index()] = cycle;
                toggles += 1;
                self.mark_fanout(pi.index(), cycle);
            }
        }

        // Stage 2: sweep dirty cells in id order — cell ids are a
        // topological order, so by the time a cell is visited all its
        // drivers have settled, and newly dirtied cells always lie ahead.
        if self.dirty_lo != usize::MAX {
            let mut pins: [bool; 3] = [false; 3];
            let mut idx = self.dirty_lo;
            while idx <= self.dirty_hi {
                if self.cell_stamp[idx] == cycle {
                    let cell = &self.netlist.cells()[idx];
                    let n_in = cell.inputs().len();
                    for (slot, n) in pins.iter_mut().zip(cell.inputs()) {
                        *slot = self.values[n.index()];
                    }
                    let new_val = cell.kind().eval(&pins[..n_in]);
                    let out = cell.output().index();
                    if new_val != self.values[out] {
                        // Arrival = gate delay + latest *changed* input.
                        let worst_in = cell
                            .inputs()
                            .iter()
                            .filter(|n| self.net_stamp[n.index()] == cycle)
                            .map(|n| self.arrival[n.index()])
                            .fold(0.0f64, f64::max);
                        self.values[out] = new_val;
                        self.arrival[out] = worst_in + self.delay[idx];
                        self.net_stamp[out] = cycle;
                        toggles += 1;
                        self.total_switch_energy +=
                            cell.kind().params().switch_energy * energy_scale;
                        self.mark_fanout(out, cycle);
                    }
                }
                idx += 1;
            }
        }
        self.total_toggles += u64::from(toggles);

        // Stage 3: delay = latest-settling changed primary output.
        let delay = self
            .netlist
            .primary_outputs()
            .iter()
            .filter(|n| self.net_stamp[n.index()] == cycle)
            .map(|n| self.arrival[n.index()])
            .fold(0.0f64, f64::max);

        Ok(Transition {
            delay,
            toggles,
            outputs: self.outputs(),
        })
    }

    fn mark_fanout(&mut self, net: usize, cycle: u64) {
        for &cid in self.netlist.fanout_of(crate::netlist::NetId(net as u32)) {
            let idx = cid.index();
            if self.cell_stamp[idx] != cycle {
                self.cell_stamp[idx] = cycle;
                self.dirty_lo = self.dirty_lo.min(idx);
                self.dirty_hi = self.dirty_hi.max(idx);
            }
        }
    }

    fn initialize(&mut self, inputs: &[bool]) {
        for (i, &pi) in self.netlist.primary_inputs().iter().enumerate() {
            self.values[pi.index()] = inputs[i];
        }
        let mut pins: Vec<bool> = Vec::with_capacity(3);
        for idx in 0..self.netlist.cell_count() {
            let cell = &self.netlist.cells()[idx];
            pins.clear();
            pins.extend(cell.inputs().iter().map(|n| self.values[n.index()]));
            self.values[cell.output().index()] = cell.kind().eval(&pins);
        }
        self.initialized = true;
    }

    /// Convenience: applies a little-endian bit-encoded vector.
    ///
    /// Bit `i` of `word` feeds primary input `i`. Inputs beyond 64 are set
    /// to `false`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from [`Self::apply`].
    pub fn apply_word(&mut self, word: u64) -> Result<Transition, NetlistError> {
        let n = self.netlist.primary_inputs().len();
        let bits: Vec<bool> = (0..n).map(|i| i < 64 && (word >> i) & 1 == 1).collect();
        self.apply(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::sta::StaticTiming;

    fn ripple_adder(bits: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", bits);
        let x = b.input_bus("b", bits);
        let mut carry = b.const0().expect("ok");
        let mut sums = Vec::new();
        for i in 0..bits {
            let s = b.cell(CellKind::Xor3, &[a[i], x[i], carry]).expect("ok");
            carry = b.cell(CellKind::Maj3, &[a[i], x[i], carry]).expect("ok");
            sums.push(s);
        }
        b.output_bus(&sums, "s");
        b.output(carry, "cout");
        b.finish().expect("valid")
    }

    fn adder_inputs(bits: usize, a: u64, b: u64) -> Vec<bool> {
        let mut v = Vec::with_capacity(bits * 2);
        for i in 0..bits {
            v.push((a >> i) & 1 == 1);
        }
        for i in 0..bits {
            v.push((b >> i) & 1 == 1);
        }
        v
    }

    #[test]
    fn first_apply_reports_zero_delay() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let t = sim.apply(&adder_inputs(4, 5, 9)).expect("apply");
        assert_eq!(t.delay, 0.0);
        assert_eq!(t.output_bits() & 0xF, (5 + 9) & 0xF);
    }

    #[test]
    fn functional_agreement_with_reference_eval() {
        let n = ripple_adder(6);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut state: u64 = 0x2F;
        for step in 0..200u64 {
            // Cheap LCG for deterministic pseudo-random vectors.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = state & 0x3F;
            let b = (state >> 6) & 0x3F;
            let inputs = adder_inputs(6, a, b);
            let t = sim.apply(&inputs).expect("apply");
            let reference = n.evaluate(&inputs).expect("eval");
            assert_eq!(t.outputs, reference, "divergence at step {step}");
            let sum = (a + b) & 0x7F;
            assert_eq!(t.output_bits() & 0x7F, sum, "bad sum at step {step}");
        }
    }

    #[test]
    fn long_carry_is_slower_than_short_carry() {
        let n = ripple_adder(8);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&adder_inputs(8, 0, 0)).expect("init");
        // 0xFF + 1 ripples the carry through all 8 positions.
        let long = sim.apply(&adder_inputs(8, 0xFF, 1)).expect("apply").delay;
        sim.apply(&adder_inputs(8, 0, 0)).expect("reset");
        // 1 + 1 only disturbs the low bits.
        let short = sim.apply(&adder_inputs(8, 1, 1)).expect("apply").delay;
        assert!(
            long > short * 2.0,
            "carry ripple must dominate: long={long}, short={short}"
        );
    }

    #[test]
    fn dynamic_delay_bounded_by_sta() {
        let n = ripple_adder(8);
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("sta");
        let bound = sta.nominal_period() + 1e-9;
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut state: u64 = 7;
        for _ in 0..500 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let t = sim
                .apply(&adder_inputs(8, state & 0xFF, (state >> 8) & 0xFF))
                .expect("apply");
            assert!(
                t.delay <= bound,
                "dynamic {} exceeds STA {}",
                t.delay,
                bound
            );
        }
    }

    #[test]
    fn voltage_scales_dynamic_delay() {
        let n = ripple_adder(8);
        let worst = adder_inputs(8, 0xFF, 1);
        let zero = adder_inputs(8, 0, 0);

        let mut hi = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        hi.apply(&zero).expect("init");
        let d_hi = hi.apply(&worst).expect("apply").delay;

        let mut lo = TimingSim::new(&n, Voltage::new(0.72).expect("ok")).expect("sim");
        lo.apply(&zero).expect("init");
        let d_lo = lo.apply(&worst).expect("apply").delay;

        let ratio = d_lo / d_hi;
        assert!(
            (ratio - 1.63).abs() < 1e-9,
            "0.72 V multiplier, got {ratio}"
        );
    }

    #[test]
    fn set_voltage_preserves_state() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&adder_inputs(4, 3, 4)).expect("init");
        let before = sim.outputs();
        sim.set_voltage(Voltage::new(0.8).expect("ok"));
        assert_eq!(sim.outputs(), before);
        // Re-applying the same vector causes no toggles and no delay.
        let t = sim.apply(&adder_inputs(4, 3, 4)).expect("apply");
        assert_eq!(t.toggles, 0);
        assert_eq!(t.delay, 0.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        assert!(matches!(
            sim.apply(&[true, false]).expect_err("short"),
            NetlistError::InputWidthMismatch { .. }
        ));
    }

    #[test]
    fn toggle_energy_accumulates() {
        let n = ripple_adder(4);
        let mut sim = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        sim.apply(&adder_inputs(4, 0, 0)).expect("init");
        sim.apply(&adder_inputs(4, 0xF, 1)).expect("apply");
        assert!(sim.total_toggles() > 0);
        assert!(sim.total_switch_energy() > 0.0);
    }

    #[test]
    fn apply_word_matches_apply() {
        let n = ripple_adder(4);
        let mut s1 = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        let mut s2 = TimingSim::new(&n, Voltage::NOMINAL).expect("sim");
        for word in [0u64, 0x13, 0xFF, 0xA5] {
            let bits: Vec<bool> = (0..8).map(|i| (word >> i) & 1 == 1).collect();
            let a = s1.apply(&bits).expect("ok");
            let b = s2.apply_word(word).expect("ok");
            assert_eq!(a, b);
        }
    }
}
