//! Error types for netlist construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors raised while building, analyzing, or simulating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell was created with the wrong number of input pins.
    ArityMismatch {
        /// The cell kind being instantiated.
        kind: &'static str,
        /// Number of pins the cell requires.
        expected: usize,
        /// Number of pins supplied.
        got: usize,
    },
    /// A net id did not refer to a net in this netlist.
    UnknownNet(u32),
    /// A net has no driver (floating input to a cell).
    UndrivenNet(u32),
    /// The cell graph contains a combinational cycle.
    CombinationalLoop,
    /// An input vector of the wrong width was supplied to the simulator.
    InputWidthMismatch {
        /// Number of primary inputs of the netlist.
        expected: usize,
        /// Width of the vector supplied.
        got: usize,
    },
    /// The netlist has no primary outputs, so timing queries are meaningless.
    NoOutputs,
    /// A voltage outside the characterized range of the delay model.
    VoltageOutOfRange {
        /// The offending voltage in volts.
        volts: f64,
        /// Characterized minimum.
        min: f64,
        /// Characterized maximum.
        max: f64,
    },
    /// A per-cell delay factor (or aging duty) was not finite/positive or
    /// was outside its valid range.
    BadDelayFactor {
        /// Cell index of the offending value.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Delay-factor sets cover a different number of cells than expected.
    FactorCountMismatch {
        /// Number of cells expected (the netlist's cell count).
        expected: usize,
        /// Number of factors supplied.
        got: usize,
    },
    /// A process-variation sigma outside `[0, 0.5)`.
    BadSigma(f64),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                kind,
                expected,
                got,
            } => write!(f, "cell {kind} requires {expected} inputs, got {got}"),
            NetlistError::UnknownNet(id) => write!(f, "unknown net id {id}"),
            NetlistError::UndrivenNet(id) => write!(f, "net {id} has no driver"),
            NetlistError::CombinationalLoop => {
                write!(f, "netlist contains a combinational loop")
            }
            NetlistError::InputWidthMismatch { expected, got } => {
                write!(f, "expected {expected} primary input values, got {got}")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::VoltageOutOfRange { volts, min, max } => write!(
                f,
                "voltage {volts} V outside characterized range [{min}, {max}] V"
            ),
            NetlistError::BadDelayFactor { index, value } => {
                write!(f, "delay factor {value} at cell {index} is invalid")
            }
            NetlistError::FactorCountMismatch { expected, got } => {
                write!(f, "expected {expected} delay factors, got {got}")
            }
            NetlistError::BadSigma(s) => {
                write!(f, "variation sigma {s} outside [0, 0.5)")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetlistError::CombinationalLoop;
        let msg = e.to_string();
        assert!(msg.starts_with("netlist contains"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }

    #[test]
    fn arity_message_mentions_kind() {
        let e = NetlistError::ArityMismatch {
            kind: "NAND2",
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("NAND2"));
    }
}
