//! Hamming-distance analysis of output traces.
//!
//! The paper's GPGPU case study (Sec 5.5, Fig 5.10) decides whether timing
//! speculation needs per-lane tuning by comparing the hamming-distance
//! histograms of consecutive vector-ALU outputs: similar histograms mean
//! similar switching activity, similar sensitized paths, and therefore
//! homogeneous error probabilities. This module provides the histogram type
//! and a similarity metric used by the `gpgpu` crate and the Fig 5.10
//! reproduction.

use serde::{Deserialize, Serialize};

/// Hamming distance between two output words.
///
/// ```
/// assert_eq!(gatelib::hamming::distance(0b1010, 0b0110), 2);
/// ```
#[must_use]
pub fn distance(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Histogram of hamming distances between consecutive outputs of a unit.
///
/// Bin `d` counts transitions whose outputs differed in exactly `d` bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammingHistogram {
    bins: Vec<u64>,
    samples: u64,
    last: Option<u64>,
}

impl HammingHistogram {
    /// Creates a histogram for `width`-bit outputs (bins `0..=width`).
    #[must_use]
    pub fn new(width: usize) -> HammingHistogram {
        HammingHistogram {
            bins: vec![0; width + 1],
            samples: 0,
            last: None,
        }
    }

    /// Feeds the next output word; records the distance to the previous one.
    pub fn record(&mut self, output: u64) {
        if let Some(prev) = self.last {
            let d = distance(prev, output) as usize;
            let top = self.bins.len() - 1;
            self.bins[d.min(top)] += 1;
            self.samples += 1;
        }
        self.last = Some(output);
    }

    /// Builds a histogram directly from an output trace.
    pub fn from_trace<I: IntoIterator<Item = u64>>(width: usize, trace: I) -> HammingHistogram {
        let mut h = HammingHistogram::new(width);
        for word in trace {
            h.record(word);
        }
        h
    }

    /// Raw bin counts (`bins()[d]` = number of transitions with distance d).
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Number of recorded transitions.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The histogram as a probability distribution. All zeros if empty.
    #[must_use]
    pub fn normalized(&self) -> Vec<f64> {
        if self.samples == 0 {
            return vec![0.0; self.bins.len()];
        }
        let n = self.samples as f64;
        self.bins.iter().map(|&c| c as f64 / n).collect()
    }

    /// Mean hamming distance per transition.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(d, &c)| d as f64 * c as f64)
            .sum();
        sum / self.samples as f64
    }

    /// Similarity to another histogram in `[0, 1]`:
    /// `1 − total-variation distance` between the normalized distributions.
    ///
    /// Two units with similarity close to 1 have statistically
    /// indistinguishable switching activity — the paper's homogeneity
    /// criterion for GPGPU lanes.
    #[must_use]
    pub fn similarity(&self, other: &HammingHistogram) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        let len = a.len().max(b.len());
        let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
        let tv: f64 = (0..len)
            .map(|i| (get(&a, i) - get(&b, i)).abs())
            .sum::<f64>()
            / 2.0;
        1.0 - tv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(distance(0, 0), 0);
        assert_eq!(distance(u64::MAX, 0), 64);
        assert_eq!(distance(0b1100, 0b1010), 2);
    }

    #[test]
    fn histogram_counts_transitions_not_samples() {
        let h = HammingHistogram::from_trace(4, [0b0000, 0b0001, 0b0011, 0b0011]);
        // 3 transitions: d=1, d=1, d=0.
        assert_eq!(h.samples(), 3);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
    }

    #[test]
    fn normalized_sums_to_one() {
        let h = HammingHistogram::from_trace(8, (0..100u64).map(|i| i * 37 % 251));
        let total: f64 = h.normalized().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = HammingHistogram::new(8);
        assert_eq!(h.samples(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.normalized().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn identical_traces_have_similarity_one() {
        let t: Vec<u64> = (0..64).map(|i| i * 31 % 97).collect();
        let a = HammingHistogram::from_trace(8, t.clone());
        let b = HammingHistogram::from_trace(8, t);
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distance_profiles_have_low_similarity() {
        // One trace never toggles; the other toggles all 4 bits every step.
        let a = HammingHistogram::from_trace(4, [0u64, 0, 0, 0, 0]);
        let b = HammingHistogram::from_trace(4, [0u64, 0xF, 0, 0xF, 0]);
        assert!(a.similarity(&b) < 0.01);
    }

    #[test]
    fn mean_matches_hand_computation() {
        let h = HammingHistogram::from_trace(4, [0b0000u64, 0b0001, 0b0111]);
        // distances: 1, 2 -> mean 1.5
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wide_distances_clamp_to_top_bin() {
        let mut h = HammingHistogram::new(2);
        h.record(0);
        h.record(0b1111); // distance 4 clamps into bin 2
        assert_eq!(h.bins()[2], 1);
    }
}
