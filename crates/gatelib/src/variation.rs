//! Process variation and aging: the physical reasons timing errors exist.
//!
//! The paper's introduction attributes timing errors to "process variation
//! and aging etc." and motivates worst-case guard bands as the slack that
//! timing speculation harvests. This module models both effects at the
//! granularity the rest of the crate works at — a multiplicative delay
//! factor per cell instance:
//!
//! * [`VariationModel`] — lognormal die-to-die (global) plus within-die
//!   random (local) delay variation, sampled into per-cell
//!   [`DelayFactors`] from an explicit seed (Monte Carlo over die
//!   instances is deterministic and reproducible);
//! * [`AgingModel`] — NBTI-style power-law degradation
//!   `ΔD/D = δ_ref · (t/t_ref)^n`, optionally weighted by per-cell stress
//!   duty factors;
//! * [`guard_band`] — the worst-case-design step of Sec 1.1: how much
//!   slack a designer must add to the nominal period so that every
//!   sampled die still meets timing.
//!
//! Factors compose multiplicatively ([`DelayFactors::compose`]), so a die
//! can be aged: `variation.sample(..).compose(&aging.factors(..)?)?`.
//!
//! ```
//! use gatelib::{CellKind, NetlistBuilder, StaticTiming, Voltage};
//! use gatelib::variation::VariationModel;
//!
//! # fn main() -> Result<(), gatelib::NetlistError> {
//! let mut b = NetlistBuilder::new("chain");
//! let a = b.input("a");
//! let x = b.cell(CellKind::Inv, &[a])?;
//! let y = b.cell(CellKind::Inv, &[x])?;
//! b.output(y, "y");
//! let n = b.finish()?;
//!
//! let process = VariationModel::ptm22_typical();
//! let die = process.sample(n.cell_count(), 7);
//! let sta = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &die)?;
//! assert!(sta.critical_path().delay > 0.0);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::NetlistError;
use crate::netlist::{CellId, Netlist};
use crate::sta::StaticTiming;
use crate::voltage::Voltage;

/// Hard clamp on sampled factors: a cell can be at most this much faster
/// or slower than nominal. Keeps pathological lognormal tails from
/// producing physically absurd dies.
pub const FACTOR_CLAMP: (f64, f64) = (0.5, 2.0);

/// Per-cell multiplicative delay factors for one die instance.
///
/// A factor of 1.0 leaves the library delay unchanged; 1.1 makes that cell
/// 10% slower. Apply with [`StaticTiming::analyze_with_factors`] or
/// [`crate::TimingSim::with_factors`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayFactors {
    factors: Vec<f64>,
}

impl DelayFactors {
    /// The identity: every cell at its nominal library delay.
    #[must_use]
    pub fn unit(cell_count: usize) -> DelayFactors {
        DelayFactors {
            factors: vec![1.0; cell_count],
        }
    }

    /// Creates factors from raw values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadDelayFactor`] if any value is not finite
    /// and strictly positive.
    pub fn new(factors: Vec<f64>) -> Result<DelayFactors, NetlistError> {
        for (i, &f) in factors.iter().enumerate() {
            if !f.is_finite() || f <= 0.0 {
                return Err(NetlistError::BadDelayFactor { index: i, value: f });
            }
        }
        Ok(DelayFactors { factors })
    }

    /// Number of cells covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the factor set covers no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The factor for one cell.
    #[must_use]
    pub fn factor(&self, id: CellId) -> Option<f64> {
        self.factors.get(id.index()).copied()
    }

    /// All factors, cell id order.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.factors
    }

    /// Element-wise product with another factor set — e.g. process
    /// variation composed with aging.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FactorCountMismatch`] if the two sets cover
    /// different numbers of cells.
    pub fn compose(&self, other: &DelayFactors) -> Result<DelayFactors, NetlistError> {
        if self.len() != other.len() {
            return Err(NetlistError::FactorCountMismatch {
                expected: self.len(),
                got: other.len(),
            });
        }
        Ok(DelayFactors {
            factors: self
                .factors
                .iter()
                .zip(&other.factors)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// `(min, max)` factor across all cells; `(1.0, 1.0)` when empty.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        if self.factors.is_empty() {
            (1.0, 1.0)
        } else {
            let lo = self.factors.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = self
                .factors
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        }
    }
}

/// Lognormal process-variation model: a global (die-to-die) component
/// shared by every cell on the die and an independent local (within-die)
/// component per cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Die-to-die sigma of `ln(delay factor)`.
    pub sigma_global: f64,
    /// Within-die random per-cell sigma of `ln(delay factor)`.
    pub sigma_local: f64,
}

impl VariationModel {
    /// Creates a model, validating both sigmas.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadSigma`] unless both sigmas lie in
    /// `[0, 0.5)` — beyond that the lognormal tails dominate and the clamp
    /// in [`VariationModel::sample`] would distort every sample.
    pub fn new(sigma_global: f64, sigma_local: f64) -> Result<VariationModel, NetlistError> {
        for &s in &[sigma_global, sigma_local] {
            if !(0.0..0.5).contains(&s) || s.is_nan() {
                return Err(NetlistError::BadSigma(s));
            }
        }
        Ok(VariationModel {
            sigma_global,
            sigma_local,
        })
    }

    /// Typical magnitudes reported for planar 22 nm-class processes:
    /// ~4% die-to-die, ~3% within-die random.
    #[must_use]
    pub fn ptm22_typical() -> VariationModel {
        VariationModel {
            sigma_global: 0.04,
            sigma_local: 0.03,
        }
    }

    /// A die with no variation at all (factors exactly 1.0).
    #[must_use]
    pub fn none() -> VariationModel {
        VariationModel {
            sigma_global: 0.0,
            sigma_local: 0.0,
        }
    }

    /// Samples one die instance: per-cell factors
    /// `exp(g + l_i)` with `g ~ N(0, σ_g²)` shared and
    /// `l_i ~ N(0, σ_l²)` independent, clamped to [`FACTOR_CLAMP`].
    ///
    /// Deterministic in `seed`: the same seed always yields the same die.
    #[must_use]
    pub fn sample(&self, cell_count: usize, seed: u64) -> DelayFactors {
        let mut rng = SplitMix64::new(seed);
        let g = self.sigma_global * rng.standard_normal();
        let factors = (0..cell_count)
            .map(|_| {
                let l = self.sigma_local * rng.standard_normal();
                (g + l).exp().clamp(FACTOR_CLAMP.0, FACTOR_CLAMP.1)
            })
            .collect();
        DelayFactors { factors }
    }
}

/// Power-law aging model, NBTI-shaped: fractional delay degradation
/// `δ(t) = δ_ref · (t / t_ref)^n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Degradation fraction after `t_ref` years of full-stress operation.
    pub delta_ref: f64,
    /// Reference lifetime in years.
    pub t_ref_years: f64,
    /// Time exponent `n` (NBTI literature clusters near 0.2).
    pub exponent: f64,
}

impl AgingModel {
    /// NBTI-style defaults for a 22 nm-class node: 8% delay degradation
    /// after a 7-year full-stress lifetime, `t^0.2` time dependence.
    #[must_use]
    pub fn nbti_ptm22() -> AgingModel {
        AgingModel {
            delta_ref: 0.08,
            t_ref_years: 7.0,
            exponent: 0.2,
        }
    }

    /// Fractional delay degradation after `years` of full-stress
    /// operation. Zero at zero; monotone increasing.
    ///
    /// # Panics
    ///
    /// Panics if `years` is negative (time does not run backwards).
    #[must_use]
    pub fn degradation(&self, years: f64) -> f64 {
        assert!(years >= 0.0, "aging time must be non-negative, got {years}");
        if years == 0.0 {
            return 0.0;
        }
        self.delta_ref * (years / self.t_ref_years).powf(self.exponent)
    }

    /// Per-cell aging factors after `years`, with optional per-cell stress
    /// duty in `[0, 1]` (1 = cell's transistors are stressed continuously).
    /// Without `duty`, every cell ages at full stress.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FactorCountMismatch`] if `duty` has the
    /// wrong length, and [`NetlistError::BadDelayFactor`] if any duty is
    /// outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `years` is negative.
    pub fn factors(
        &self,
        cell_count: usize,
        years: f64,
        duty: Option<&[f64]>,
    ) -> Result<DelayFactors, NetlistError> {
        let delta = self.degradation(years);
        match duty {
            None => Ok(DelayFactors {
                factors: vec![1.0 + delta; cell_count],
            }),
            Some(d) => {
                if d.len() != cell_count {
                    return Err(NetlistError::FactorCountMismatch {
                        expected: cell_count,
                        got: d.len(),
                    });
                }
                for (i, &x) in d.iter().enumerate() {
                    if !(0.0..=1.0).contains(&x) || x.is_nan() {
                        return Err(NetlistError::BadDelayFactor { index: i, value: x });
                    }
                }
                Ok(DelayFactors {
                    factors: d.iter().map(|&x| 1.0 + delta * x).collect(),
                })
            }
        }
    }
}

/// Worst-case-design guard band (Sec 1.1): the multiplier on the nominal
/// (variation-free) critical-path delay needed to cover the slowest of
/// `samples` Monte Carlo die instances.
///
/// Always ≥ 1 when any sampled die is slower than nominal; exactly the
/// slack that timing speculation later reclaims on typical dies.
///
/// The Monte Carlo loop fans out across `SYNTS_THREADS` workers (or the
/// machine's available parallelism) — every die is seeded independently
/// and the result is a max-reduction, so the answer is bit-identical at
/// any worker count. Use [`guard_band_with_workers`] for an explicit
/// count.
///
/// # Errors
///
/// Returns [`NetlistError::NoOutputs`] for an un-timeable netlist and
/// [`NetlistError::BadSigma`] via the model's invariants.
pub fn guard_band(
    netlist: &Netlist,
    voltage: Voltage,
    model: &VariationModel,
    samples: u32,
    seed: u64,
) -> Result<f64, NetlistError> {
    guard_band_with_workers(netlist, voltage, model, samples, seed, workers_from_env())
}

/// [`guard_band`] with an explicit Monte Carlo worker count
/// (`Synts::builder().workers(n)` callers thread their pool width
/// through here). `workers <= 1` runs inline on the caller.
///
/// # Errors
///
/// As [`guard_band`].
pub fn guard_band_with_workers(
    netlist: &Netlist,
    voltage: Voltage,
    model: &VariationModel,
    samples: u32,
    seed: u64,
    workers: usize,
) -> Result<f64, NetlistError> {
    let nominal = StaticTiming::analyze(netlist, voltage)?
        .critical_path()
        .delay;
    let die_ratio = |k: u32| -> Result<f64, NetlistError> {
        let die = model.sample(netlist.cell_count(), seed.wrapping_add(u64::from(k)));
        let sta = StaticTiming::analyze_with_factors(netlist, voltage, &die)?;
        Ok(sta.critical_path().delay / nominal)
    };
    let workers = workers.max(1).min(samples.max(1) as usize);
    let mut worst: f64 = 1.0;
    if workers <= 1 {
        for k in 0..samples {
            worst = worst.max(die_ratio(k)?);
        }
        return Ok(worst);
    }
    // Contiguous chunks per worker; the reduction is a max, so chunk
    // boundaries and worker scheduling cannot change the result.
    let chunk = (samples as usize).div_ceil(workers);
    let results: Vec<Result<f64, NetlistError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let die_ratio = &die_ratio;
                scope.spawn(move || {
                    let lo = (w * chunk) as u32;
                    let hi = (((w + 1) * chunk).min(samples as usize)) as u32;
                    let mut local: f64 = 1.0;
                    for k in lo..hi {
                        local = local.max(die_ratio(k)?);
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    // Surface the lowest-chunk error first, like a sequential loop would.
    for r in results {
        worst = worst.max(r?);
    }
    Ok(worst)
}

/// Worker count for [`guard_band`]: `SYNTS_THREADS` if set (0 meaning
/// sequential, clamped to 1), otherwise the machine's parallelism —
/// the same resolution order as the optimizer's thread pool.
fn workers_from_env() -> usize {
    // synts-lint: allow(env-read) — SYNTS_THREADS is the sanctioned worker-count knob; results are bit-identical at any count
    if let Ok(raw) = std::env::var("SYNTS_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// SplitMix64 with a Box–Muller Gaussian tap — deterministic, seedable,
/// and dependency-free. Statistical quality is far beyond what Monte Carlo
/// over a few thousand cells can resolve.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
    cached_normal: Option<f64>,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed,
            cached_normal: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1]: never exactly zero, so `ln` below is safe.
    fn uniform_open(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 random bits
        (bits as f64 + 1.0) / (9_007_199_254_740_992.0 + 1.0)
    }

    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        let u1 = self.uniform_open();
        let u2 = self.uniform_open();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(radius * angle.sin());
        radius * angle.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::sim::TimingSim;

    fn inv_chain(len: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let mut net = b.input("a");
        for _ in 0..len {
            net = b.cell(CellKind::Inv, &[net]).expect("arity ok");
        }
        b.output(net, "y");
        b.finish().expect("valid")
    }

    #[test]
    fn unit_factors_do_not_change_sta() {
        let n = inv_chain(8);
        let base = StaticTiming::analyze(&n, Voltage::NOMINAL).expect("ok");
        let unit = DelayFactors::unit(n.cell_count());
        let with = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &unit).expect("ok");
        assert_eq!(base.critical_path().delay, with.critical_path().delay);
    }

    #[test]
    fn factors_validation_rejects_bad_values() {
        assert!(matches!(
            DelayFactors::new(vec![1.0, 0.0]).expect_err("zero"),
            NetlistError::BadDelayFactor { index: 1, .. }
        ));
        assert!(DelayFactors::new(vec![1.0, f64::NAN]).is_err());
        assert!(DelayFactors::new(vec![1.0, -2.0]).is_err());
        assert!(DelayFactors::new(vec![1.0, 1.5]).is_ok());
    }

    #[test]
    fn compose_multiplies_elementwise() {
        let a = DelayFactors::new(vec![1.0, 2.0]).expect("ok");
        let b = DelayFactors::new(vec![1.5, 0.5]).expect("ok");
        let c = a.compose(&b).expect("same length");
        assert_eq!(c.as_slice(), &[1.5, 1.0]);
        let short = DelayFactors::unit(1);
        assert!(matches!(
            a.compose(&short).expect_err("length mismatch"),
            NetlistError::FactorCountMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let m = VariationModel::ptm22_typical();
        let a = m.sample(64, 42);
        let b = m.sample(64, 42);
        let c = m.sample(64, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_sigma_yields_unit_factors() {
        let m = VariationModel::none();
        let f = m.sample(32, 1);
        for &x in f.as_slice() {
            assert!((x - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn sigma_validation() {
        assert!(VariationModel::new(0.6, 0.0).is_err());
        assert!(VariationModel::new(0.0, f64::NAN).is_err());
        assert!(VariationModel::new(-0.1, 0.0).is_err());
        assert!(VariationModel::new(0.1, 0.2).is_ok());
    }

    #[test]
    fn larger_sigma_spreads_sta_wider() {
        let n = inv_chain(32);
        let tight = VariationModel::new(0.0, 0.02).expect("ok");
        let loose = VariationModel::new(0.0, 0.20).expect("ok");
        let spread = |m: &VariationModel| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for seed in 0..50u64 {
                let die = m.sample(n.cell_count(), seed);
                let d = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &die)
                    .expect("ok")
                    .critical_path()
                    .delay;
                lo = lo.min(d);
                hi = hi.max(d);
            }
            hi - lo
        };
        assert!(spread(&loose) > spread(&tight) * 2.0);
    }

    #[test]
    fn global_sigma_shifts_whole_die_together() {
        // With only global sigma, every cell on a die gets the same factor.
        let m = VariationModel::new(0.1, 0.0).expect("ok");
        let f = m.sample(16, 9);
        let first = f.as_slice()[0];
        for &x in f.as_slice() {
            assert!((x - first).abs() < 1e-15);
        }
    }

    #[test]
    fn aging_is_zero_at_birth_and_monotone() {
        let a = AgingModel::nbti_ptm22();
        assert_eq!(a.degradation(0.0), 0.0);
        let mut prev = 0.0;
        for years in [0.1, 0.5, 1.0, 3.0, 7.0, 10.0] {
            let d = a.degradation(years);
            assert!(d > prev, "degradation must increase: {d} at {years}y");
            prev = d;
        }
        // At the reference lifetime, exactly delta_ref.
        assert!((a.degradation(7.0) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn aging_duty_scales_stress() {
        let a = AgingModel::nbti_ptm22();
        let f = a.factors(3, 7.0, Some(&[0.0, 0.5, 1.0])).expect("ok");
        let s = f.as_slice();
        assert!((s[0] - 1.0).abs() < 1e-12, "unstressed cell does not age");
        assert!((s[2] - 1.08).abs() < 1e-12, "full stress ages fully");
        assert!(s[1] > s[0] && s[1] < s[2]);
    }

    #[test]
    fn aging_rejects_bad_duty() {
        let a = AgingModel::nbti_ptm22();
        assert!(a.factors(2, 1.0, Some(&[0.5])).is_err(), "length");
        assert!(a.factors(2, 1.0, Some(&[0.5, 1.5])).is_err(), "range");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn aging_panics_on_negative_time() {
        let _ = AgingModel::nbti_ptm22().degradation(-1.0);
    }

    #[test]
    fn guard_band_covers_all_sampled_dies() {
        let n = inv_chain(16);
        let m = VariationModel::ptm22_typical();
        let gb = guard_band(&n, Voltage::NOMINAL, &m, 40, 7).expect("ok");
        assert!(gb >= 1.0);
        let nominal = StaticTiming::analyze(&n, Voltage::NOMINAL)
            .expect("ok")
            .critical_path()
            .delay;
        for seed in 0..40u64 {
            let die = m.sample(n.cell_count(), 7u64.wrapping_add(seed));
            let d = StaticTiming::analyze_with_factors(&n, Voltage::NOMINAL, &die)
                .expect("ok")
                .critical_path()
                .delay;
            assert!(d <= gb * nominal * (1.0 + 1e-12));
        }
    }

    #[test]
    fn guard_band_grows_with_sigma() {
        let n = inv_chain(16);
        let small = VariationModel::new(0.02, 0.01).expect("ok");
        let large = VariationModel::new(0.15, 0.10).expect("ok");
        let gb_small = guard_band(&n, Voltage::NOMINAL, &small, 30, 3).expect("ok");
        let gb_large = guard_band(&n, Voltage::NOMINAL, &large, 30, 3).expect("ok");
        assert!(gb_large > gb_small);
    }

    #[test]
    fn dynamic_sim_respects_factors() {
        // A slowed die must report longer sensitized delays.
        let n = inv_chain(8);
        let slow = DelayFactors::new(vec![1.5; n.cell_count()]).expect("ok");
        let mut base = TimingSim::new(&n, Voltage::NOMINAL).expect("ok");
        let mut slowed = TimingSim::with_factors(&n, Voltage::NOMINAL, &slow).expect("ok");
        base.apply(&[false]).expect("width ok");
        slowed.apply(&[false]).expect("width ok");
        let d0 = base.apply(&[true]).expect("width ok").delay;
        let d1 = slowed.apply(&[true]).expect("width ok").delay;
        assert!((d1 - 1.5 * d0).abs() < 1e-9, "{d1} vs 1.5×{d0}");
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = SplitMix64::new(123);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = rng.standard_normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / f64::from(n);
        let var = sq / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
