//! 64-lane bit-parallel dynamic timing simulation.
//!
//! [`crate::TimingSim`] bit-packs 64 *nets* per machine word; this module
//! rotates that layout 90°: [`WideTimingSim`] keeps one `u64` **per net**,
//! whose 64 bits are 64 *independent* trace vectors ("lanes") marching
//! through the circuit together. Logic evaluation becomes one bitwise
//! [`CellKind::eval_word`] per visited cell instead of 64 scalar evals, and
//! all the event-driven bookkeeping — dirty-set maintenance, fanout
//! marking, topological cell visits, pin gathering — is paid once per cell
//! instead of once per cell *per lane*. Only the floating-point arrival
//! arithmetic remains per-lane, and it runs only for lanes whose nets
//! actually toggled.
//!
//! Lanes are perfectly isolated: under the settled single-transition delay
//! model the circuit state after a vector is a pure function of that
//! vector, so lane `l` of a [`WideTimingSim`] is **bit-identical** — same
//! delays, same toggle counts, same switching energy, same outputs — to a
//! scalar [`crate::TimingSim`] stepped through lane `l`'s vector sequence
//! alone (property-tested in `tests/bitparallel_sim.rs`). A lane that
//! re-applies its previous vector toggles nothing and costs nothing, which
//! is how callers idle lanes in ragged final batches of fewer than 64
//! vectors.
//!
//! The simulator borrows its netlist (no clone per construction): it is a
//! short-lived engine the characterization pipeline instantiates per
//! delay-trace batch, not a long-lived state machine.

use crate::error::NetlistError;
use crate::netlist::{NetId, Netlist};
use crate::voltage::Voltage;

/// Number of independent trace vectors one [`WideTimingSim`] advances per
/// step — the machine word width.
pub const LANES: usize = 64;

/// Outcome of applying one 64-lane input batch to a [`WideTimingSim`]:
/// per-lane sensitized delays and toggle counts, exactly what
/// [`crate::Step`] reports for one lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideStep {
    /// Per-lane sensitized path delay (see [`crate::Transition::delay`]).
    pub delays: [f64; LANES],
    /// Per-lane count of nets that toggled during this transition.
    pub toggles: [u32; LANES],
}

/// Event-driven timing simulator evaluating 64 independent trace vectors
/// per machine word. See the [module docs](self) for the layout and the
/// lane-isolation guarantee.
#[derive(Debug)]
pub struct WideTimingSim<'n> {
    netlist: &'n Netlist,
    voltage: Voltage,
    /// Per-cell propagation delay at the simulation voltage.
    delay: Vec<f64>,
    /// Per-net lane values: bit `l` of `values[net]` is net's value in
    /// lane `l`.
    values: Vec<u64>,
    /// Per-(net, lane) arrival time, lane-minor (`net * 64 + lane`);
    /// meaningful when `net_stamp[net] == cycle` and the lane's bit is set
    /// in `changed[net]`.
    arrival: Vec<f64>,
    /// Lanes in which the net toggled this cycle (valid when
    /// `net_stamp[net] == cycle`).
    changed: Vec<u64>,
    /// Cycle at which the net last toggled in any lane.
    net_stamp: Vec<u64>,
    /// Reusable dirty set, stamped like [`crate::TimingSim`]'s.
    cell_stamp: Vec<u64>,
    dirty_lo: usize,
    dirty_hi: usize,
    cycle: u64,
    initialized: bool,
    total_toggles: [u64; LANES],
    total_switch_energy: [f64; LANES],
}

impl<'n> WideTimingSim<'n> {
    /// Creates a 64-lane simulator for `netlist` at supply voltage
    /// `voltage`.
    ///
    /// # Errors
    ///
    /// Returns any [`NetlistError`] from [`Netlist::check_invariants`].
    pub fn new(netlist: &'n Netlist, voltage: Voltage) -> Result<WideTimingSim<'n>, NetlistError> {
        let scale = voltage.delay_scale();
        let delay = netlist.cell_delays_v1().iter().map(|d| d * scale).collect();
        WideTimingSim::with_delays(netlist, voltage, delay)
    }

    /// Creates a simulator whose per-cell delays carry the multiplicative
    /// factors of a specific die instance — the 64-lane analogue of
    /// [`crate::TimingSim::with_factors`].
    ///
    /// # Errors
    ///
    /// As [`WideTimingSim::new`], plus
    /// [`NetlistError::FactorCountMismatch`] if `factors` does not cover
    /// exactly the netlist's cells.
    pub fn with_factors(
        netlist: &'n Netlist,
        voltage: Voltage,
        factors: &crate::variation::DelayFactors,
    ) -> Result<WideTimingSim<'n>, NetlistError> {
        if factors.len() != netlist.cell_count() {
            return Err(NetlistError::FactorCountMismatch {
                expected: netlist.cell_count(),
                got: factors.len(),
            });
        }
        let scale = voltage.delay_scale();
        let delay = netlist
            .cell_delays_v1()
            .iter()
            .zip(factors.as_slice())
            .map(|(d, f)| d * scale * f)
            .collect();
        WideTimingSim::with_delays(netlist, voltage, delay)
    }

    fn with_delays(
        netlist: &'n Netlist,
        voltage: Voltage,
        delay: Vec<f64>,
    ) -> Result<WideTimingSim<'n>, NetlistError> {
        netlist.check_invariants()?;
        Ok(WideTimingSim {
            voltage,
            delay,
            values: vec![0; netlist.net_count()],
            arrival: vec![0.0; netlist.net_count() * LANES],
            changed: vec![0; netlist.net_count()],
            net_stamp: vec![0; netlist.net_count()],
            cell_stamp: vec![0; netlist.cell_count()],
            dirty_lo: 0,
            dirty_hi: 0,
            cycle: 0,
            initialized: false,
            total_toggles: [0; LANES],
            total_switch_energy: [0.0; LANES],
            netlist,
        })
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Current supply voltage.
    #[must_use]
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// Cumulative net toggles of one lane since construction.
    #[must_use]
    pub fn total_toggles(&self, lane: usize) -> u64 {
        self.total_toggles[lane]
    }

    /// Cumulative normalized switching energy of one lane since
    /// construction.
    #[must_use]
    pub fn total_switch_energy(&self, lane: usize) -> f64 {
        self.total_switch_energy[lane]
    }

    #[inline]
    fn lane_bit(&self, net: usize, lane: usize) -> bool {
        (self.values[net] >> lane) & 1 == 1
    }

    /// One lane's current primary output values, in declaration order.
    #[must_use]
    pub fn outputs_lane(&self, lane: usize) -> Vec<bool> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|n| self.lane_bit(n.index(), lane))
            .collect()
    }

    /// Packs up to 64 primary outputs of one lane into a word, output 0 in
    /// bit 0 — the per-lane form of [`crate::TimingSim::output_word`].
    #[must_use]
    pub fn output_word(&self, lane: usize) -> u64 {
        self.netlist
            .primary_outputs()
            .iter()
            .take(64)
            .enumerate()
            .fold(0u64, |acc, (i, n)| {
                acc | u64::from(self.lane_bit(n.index(), lane)) << i
            })
    }

    /// Applies one input batch: `inputs[i]` carries primary input `i`'s
    /// value for all 64 lanes (bit `l` = lane `l`). The first call
    /// initializes every lane's electrical state and reports zero delay
    /// and zero toggles, like [`crate::TimingSim::step`]'s first call.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// supply one word per primary input.
    pub fn step(&mut self, inputs: &[u64]) -> Result<WideStep, NetlistError> {
        let n_pi = self.netlist.primary_inputs().len();
        if inputs.len() != n_pi {
            return Err(NetlistError::InputWidthMismatch {
                expected: n_pi,
                got: inputs.len(),
            });
        }
        if !self.initialized {
            self.initialize(inputs);
            return Ok(WideStep {
                delays: [0.0; LANES],
                toggles: [0; LANES],
            });
        }

        self.cycle += 1;
        let cycle = self.cycle;
        let energy_scale = self.voltage.energy_scale();
        let mut toggles = [0u32; LANES];
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;

        // Stage 1: primary input transitions, per lane.
        for i in 0..n_pi {
            let pi = self.netlist.primary_inputs()[i].index();
            let diff = self.values[pi] ^ inputs[i];
            if diff != 0 {
                self.values[pi] = inputs[i];
                self.changed[pi] = diff;
                self.net_stamp[pi] = cycle;
                let mut lanes = diff;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    self.arrival[pi * LANES + lane] = 0.0;
                    toggles[lane] += 1;
                }
                self.mark_fanout(pi, cycle);
            }
        }

        // Stage 2: sweep dirty cells in id order (a topological order).
        // A cell is dirty when any lane of any input toggled; its output
        // can only toggle in lanes where an input toggled, so the bitwise
        // diff below is exact per lane.
        if self.dirty_lo != usize::MAX {
            let mut pins: [u64; 3] = [0; 3];
            let mut idx = self.dirty_lo;
            while idx <= self.dirty_hi {
                if self.cell_stamp[idx] == cycle {
                    let cell = &self.netlist.cells()[idx];
                    let n_in = cell.inputs().len();
                    for (slot, n) in pins.iter_mut().zip(cell.inputs()) {
                        *slot = self.values[n.index()];
                    }
                    let new_word = cell.kind().eval_word(&pins[..n_in]);
                    let out = cell.output().index();
                    let diff = new_word ^ self.values[out];
                    if diff != 0 {
                        let switch_energy = cell.kind().params().switch_energy * energy_scale;
                        let cell_delay = self.delay[idx];
                        self.values[out] = new_word;
                        self.changed[out] = diff;
                        self.net_stamp[out] = cycle;
                        let mut lanes = diff;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            // Arrival = gate delay + latest *changed* input
                            // of this lane — same fold order and identity
                            // element as the scalar sweep.
                            let worst_in = cell
                                .inputs()
                                .iter()
                                .filter(|n| {
                                    self.net_stamp[n.index()] == cycle
                                        && (self.changed[n.index()] >> lane) & 1 == 1
                                })
                                .map(|n| self.arrival[n.index() * LANES + lane])
                                .fold(0.0f64, f64::max);
                            self.arrival[out * LANES + lane] = worst_in + cell_delay;
                            toggles[lane] += 1;
                            self.total_switch_energy[lane] += switch_energy;
                        }
                        self.mark_fanout(out, cycle);
                    }
                }
                idx += 1;
            }
        }
        for lane in 0..LANES {
            self.total_toggles[lane] += u64::from(toggles[lane]);
        }

        // Stage 3: per lane, delay = latest-settling changed primary
        // output (same fold order as the scalar sweep).
        let mut delays = [0.0f64; LANES];
        for n in self.netlist.primary_outputs() {
            let net = n.index();
            if self.net_stamp[net] != cycle {
                continue;
            }
            let mut lanes = self.changed[net];
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                delays[lane] = delays[lane].max(self.arrival[net * LANES + lane]);
            }
        }

        Ok(WideStep { delays, toggles })
    }

    #[inline]
    fn mark_fanout(&mut self, net: usize, cycle: u64) {
        for &cid in self.netlist.fanout_of(NetId(net as u32)) {
            let idx = cid.index();
            if self.cell_stamp[idx] != cycle {
                self.cell_stamp[idx] = cycle;
                self.dirty_lo = self.dirty_lo.min(idx);
                self.dirty_hi = self.dirty_hi.max(idx);
            }
        }
    }

    fn initialize(&mut self, inputs: &[u64]) {
        for (i, &word) in inputs.iter().enumerate() {
            let pi = self.netlist.primary_inputs()[i].index();
            self.values[pi] = word;
        }
        let mut pins: [u64; 3] = [0; 3];
        for idx in 0..self.netlist.cell_count() {
            let cell = &self.netlist.cells()[idx];
            let n_in = cell.inputs().len();
            for (slot, n) in pins.iter_mut().zip(cell.inputs()) {
                *slot = self.values[n.index()];
            }
            self.values[cell.output().index()] = cell.kind().eval_word(&pins[..n_in]);
        }
        self.initialized = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::sim::TimingSim;

    fn ripple_adder(bits: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", bits);
        let x = b.input_bus("b", bits);
        let mut carry = b.const0().expect("ok");
        let mut sums = Vec::new();
        for i in 0..bits {
            let s = b.cell(CellKind::Xor3, &[a[i], x[i], carry]).expect("ok");
            carry = b.cell(CellKind::Maj3, &[a[i], x[i], carry]).expect("ok");
            sums.push(s);
        }
        b.output_bus(&sums, "s");
        b.output(carry, "cout");
        b.finish().expect("valid")
    }

    /// Deterministic per-lane vector streams: lane `l`, step `t`.
    fn lane_vector(n_pi: usize, lane: usize, t: usize) -> Vec<bool> {
        let mut state = (lane as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t as u64);
        (0..n_pi)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 63 == 1
            })
            .collect()
    }

    #[test]
    fn every_lane_matches_an_independent_scalar_sim() {
        let n = ripple_adder(5);
        let n_pi = n.primary_inputs().len();
        let mut wide = WideTimingSim::new(&n, Voltage::NOMINAL).expect("wide");
        let mut scalars: Vec<TimingSim> = (0..LANES)
            .map(|_| TimingSim::new(&n, Voltage::NOMINAL).expect("scalar"))
            .collect();
        for t in 0..40 {
            let mut words = vec![0u64; n_pi];
            let mut lane_inputs = Vec::new();
            for lane in 0..LANES {
                let v = lane_vector(n_pi, lane, t);
                for (i, &bit) in v.iter().enumerate() {
                    if bit {
                        words[i] |= 1 << lane;
                    }
                }
                lane_inputs.push(v);
            }
            let ws = wide.step(&words).expect("wide step");
            for (lane, inputs) in lane_inputs.iter().enumerate() {
                let ss = scalars[lane].step(inputs).expect("scalar step");
                assert_eq!(
                    ws.delays[lane].to_bits(),
                    ss.delay.to_bits(),
                    "delay, lane {lane} step {t}"
                );
                assert_eq!(
                    ws.toggles[lane], ss.toggles,
                    "toggles, lane {lane} step {t}"
                );
                assert_eq!(
                    wide.output_word(lane),
                    scalars[lane].output_word(),
                    "outputs, lane {lane} step {t}"
                );
            }
        }
        for lane in 0..LANES {
            assert_eq!(wide.total_toggles(lane), scalars[lane].total_toggles());
            assert_eq!(
                wide.total_switch_energy(lane).to_bits(),
                scalars[lane].total_switch_energy().to_bits(),
                "energy, lane {lane}"
            );
        }
    }

    #[test]
    fn idle_lane_repeating_its_vector_costs_nothing() {
        let n = ripple_adder(4);
        let n_pi = n.primary_inputs().len();
        let mut wide = WideTimingSim::new(&n, Voltage::NOMINAL).expect("wide");
        // Lane 0 active, lane 1 idle after initialization.
        let v0 = lane_vector(n_pi, 0, 0);
        let v1 = lane_vector(n_pi, 1, 0);
        let pack = |a: &[bool], b: &[bool]| -> Vec<u64> {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| u64::from(x) | (u64::from(y) << 1))
                .collect()
        };
        wide.step(&pack(&v0, &v1)).expect("init");
        for t in 1..10 {
            let ws = wide
                .step(&pack(&lane_vector(n_pi, 0, t), &v1))
                .expect("step");
            assert_eq!(ws.delays[1], 0.0, "idle lane has no delay");
            assert_eq!(ws.toggles[1], 0, "idle lane toggles nothing");
        }
        assert_eq!(wide.total_toggles(1), 0);
        assert_eq!(wide.total_switch_energy(1), 0.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let n = ripple_adder(4);
        let mut wide = WideTimingSim::new(&n, Voltage::NOMINAL).expect("wide");
        assert!(matches!(
            wide.step(&[0u64, 1]).expect_err("short"),
            NetlistError::InputWidthMismatch { .. }
        ));
    }

    #[test]
    fn die_factors_match_scalar_with_factors() {
        let n = ripple_adder(4);
        let n_pi = n.primary_inputs().len();
        let aging = crate::variation::AgingModel::nbti_ptm22();
        let f = aging.factors(n.cell_count(), 5.0, None).expect("factors");
        let mut wide = WideTimingSim::with_factors(&n, Voltage::NOMINAL, &f).expect("wide");
        let mut scalar = TimingSim::with_factors(&n, Voltage::NOMINAL, &f).expect("scalar");
        for t in 0..20 {
            let v = lane_vector(n_pi, 7, t);
            let words: Vec<u64> = v.iter().map(|&b| u64::from(b)).collect();
            let ws = wide.step(&words).expect("wide");
            let ss = scalar.step(&v).expect("scalar");
            assert_eq!(ws.delays[0].to_bits(), ss.delay.to_bits(), "step {t}");
        }
    }
}
