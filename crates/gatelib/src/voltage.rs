//! Supply-voltage model: Table 5.1 of the paper, reproduced by construction.
//!
//! The paper characterizes delay-vs-voltage by simulating 22 nm ring
//! oscillators in HSPICE and tabulating the nominal clock period multiplier
//! at seven Vdd points (Table 5.1). We embed those seven points verbatim and
//! interpolate monotonically between them; a ring-oscillator "simulation"
//! over our own cell library therefore reproduces Table 5.1 exactly at the
//! published points (`repro table-5-1` checks this).

use crate::error::NetlistError;
use serde::{Deserialize, Serialize};

/// The seven `(Vdd, t_nom multiplier)` points of the paper's Table 5.1.
pub const VOLTAGE_TABLE_POINTS: [(f64, f64); 7] = [
    (1.00, 1.00),
    (0.92, 1.13),
    (0.86, 1.27),
    (0.80, 1.39),
    (0.72, 1.63),
    (0.68, 2.21),
    (0.65, 2.63),
];

/// A supply voltage in volts.
///
/// Newtype so voltages cannot be confused with timing-speculation ratios or
/// normalized delays, which are also `f64` in this codebase.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Voltage(f64);

impl Voltage {
    /// The nominal chip voltage (1.0 V), the paper's reference point.
    pub const NOMINAL: Voltage = Voltage(1.0);

    /// Lowest voltage characterized by Table 5.1.
    pub const MIN_CHARACTERIZED: Voltage = Voltage(0.65);

    /// Creates a voltage, validating it against the characterized range.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::VoltageOutOfRange`] if `volts` lies outside
    /// `[0.65, 1.0]` — the delay model has no data beyond Table 5.1 and
    /// refuses to extrapolate silently.
    pub fn new(volts: f64) -> Result<Voltage, NetlistError> {
        if !(0.65..=1.0).contains(&volts) || volts.is_nan() {
            return Err(NetlistError::VoltageOutOfRange {
                volts,
                min: 0.65,
                max: 1.0,
            });
        }
        Ok(Voltage(volts))
    }

    /// The raw value in volts.
    #[must_use]
    pub fn volts(self) -> f64 {
        self.0
    }

    /// Delay multiplier relative to 1.0 V operation (Table 5.1 with
    /// monotone piecewise-linear interpolation between published points).
    ///
    /// Multiply any 1.0 V gate or path delay by this factor to obtain the
    /// delay at this voltage. At the seven published voltages the result is
    /// exactly the published multiplier.
    #[must_use]
    pub fn delay_scale(self) -> f64 {
        let v = self.0;
        // Table points are sorted by descending voltage.
        let pts = &VOLTAGE_TABLE_POINTS;
        if v >= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (v_hi, s_hi) = w[0];
            let (v_lo, s_lo) = w[1];
            if v >= v_lo {
                let t = (v_hi - v) / (v_hi - v_lo);
                return s_hi + t * (s_lo - s_hi);
            }
        }
        pts[pts.len() - 1].1
    }

    /// Dynamic-energy multiplier relative to 1.0 V operation (`V²`, Eq 4.3's
    /// `α V_i²` with α factored out).
    #[must_use]
    pub fn energy_scale(self) -> f64 {
        self.0 * self.0
    }
}

impl Default for Voltage {
    fn default() -> Self {
        Voltage::NOMINAL
    }
}

impl std::fmt::Display for Voltage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} V", self.0)
    }
}

/// The discrete voltage levels available to the DVFS controller — the set
/// `V` of the paper's system model (Sec 4.1), defaulting to Table 5.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageTable {
    levels: Vec<Voltage>,
}

impl VoltageTable {
    /// The seven-level table published in the paper (Table 5.1),
    /// ordered from highest (1.0 V) to lowest (0.65 V).
    #[must_use]
    pub fn ptm22() -> VoltageTable {
        VoltageTable {
            levels: VOLTAGE_TABLE_POINTS
                .iter()
                .map(|&(v, _)| Voltage(v))
                .collect(),
        }
    }

    /// Builds a custom table from raw voltages.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::VoltageOutOfRange`] if any entry is outside
    /// the characterized `[0.65, 1.0]` V range, and
    /// [`NetlistError::NoOutputs`] never — an empty input yields an empty
    /// table which is valid but useless.
    pub fn from_volts<I: IntoIterator<Item = f64>>(volts: I) -> Result<VoltageTable, NetlistError> {
        let mut levels = volts
            .into_iter()
            .map(Voltage::new)
            .collect::<Result<Vec<_>, _>>()?;
        levels.sort_by(|a, b| b.partial_cmp(a).expect("validated: no NaN"));
        Ok(VoltageTable { levels })
    }

    /// The voltage levels, highest first.
    #[must_use]
    pub fn levels(&self) -> &[Voltage] {
        &self.levels
    }

    /// Number of levels (the paper's `Q`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table has no levels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Iterates over the levels, highest voltage first.
    pub fn iter(&self) -> std::slice::Iter<'_, Voltage> {
        self.levels.iter()
    }
}

impl Default for VoltageTable {
    fn default() -> Self {
        VoltageTable::ptm22()
    }
}

impl<'a> IntoIterator for &'a VoltageTable {
    type Item = &'a Voltage;
    type IntoIter = std::slice::Iter<'a, Voltage>;
    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_1_reproduced_exactly() {
        for &(v, expected) in &VOLTAGE_TABLE_POINTS {
            let volt = Voltage::new(v).expect("published point in range");
            let got = volt.delay_scale();
            assert!(
                (got - expected).abs() < 1e-12,
                "Table 5.1 mismatch at {v} V: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn delay_scale_monotone_decreasing_in_voltage() {
        let mut prev = f64::INFINITY;
        let mut v = 0.65;
        while v <= 1.0 {
            let s = Voltage::new(v).expect("in range").delay_scale();
            assert!(s <= prev + 1e-12, "delay scale not monotone at {v} V");
            prev = s;
            v += 0.005;
        }
    }

    #[test]
    fn interpolation_between_points() {
        // Midway between 0.92 (1.13) and 0.86 (1.27).
        let s = Voltage::new(0.89).expect("in range").delay_scale();
        assert!((s - 1.20).abs() < 1e-9, "expected linear midpoint, got {s}");
    }

    #[test]
    fn out_of_range_voltage_rejected() {
        assert!(Voltage::new(0.5).is_err());
        assert!(Voltage::new(1.1).is_err());
        assert!(Voltage::new(f64::NAN).is_err());
        assert!(Voltage::new(0.65).is_ok());
        assert!(Voltage::new(1.0).is_ok());
    }

    #[test]
    fn energy_scale_is_v_squared() {
        let v = Voltage::new(0.8).expect("in range");
        assert!((v.energy_scale() - 0.64).abs() < 1e-12);
    }

    #[test]
    fn default_table_has_seven_levels_sorted_desc() {
        let t = VoltageTable::ptm22();
        assert_eq!(t.len(), 7);
        for w in t.levels().windows(2) {
            assert!(w[0].volts() > w[1].volts());
        }
        assert_eq!(t.levels()[0], Voltage::NOMINAL);
    }

    #[test]
    fn custom_table_sorted_and_validated() {
        let t = VoltageTable::from_volts([0.8, 1.0, 0.9]).expect("all in range");
        let v: Vec<f64> = t.iter().map(|x| x.volts()).collect();
        assert_eq!(v, vec![1.0, 0.9, 0.8]);
        assert!(VoltageTable::from_volts([0.3]).is_err());
    }

    #[test]
    fn display_formats_volts() {
        assert_eq!(Voltage::NOMINAL.to_string(), "1.00 V");
    }
}
